"""Deterministic, seeded fault injection for the task executors.

The paper's runs hold task graphs alive for hours across thousands of
nodes; PaRSEC must absorb transient kernel failures, memory pressure, and
stragglers without losing the factorization.  Our reproduction exercises
the same recovery machinery (:mod:`repro.runtime.resilience`) with a
*deterministic* adversary: a :class:`FaultPlan` decides — from the seed,
the task id, and the attempt number alone — whether a fault fires.  The
decision is independent of worker count, scheduling order, and wall
clock, so a chaotic run is exactly reproducible and the recovered result
can be compared bitwise against a fault-free run.

Fault spec grammar (the CLI's ``--faults`` argument)::

    SPEC   := CLAUSE ("," CLAUSE)*
    CLAUSE := KIND ":" KERNEL ":" RATE [":" PARAM]
    KIND   := "transient" | "nan" | "oom" | "stall"
    KERNEL := "potrf" | "trsm" | "syrk" | "gemm" | "*"
    RATE   := float in [0, 1]       (per-attempt firing probability)
    PARAM  := float                 (stall duration in seconds; stall only)

Examples::

    transient:gemm:0.05                 5% of GEMM dispatches raise
    nan:potrf:0.01,oom:*:0.02           NaN-corrupt 1% of POTRF outputs,
                                        fail 2% of all dispatches with a
                                        simulated pool exhaustion
    stall:trsm:0.1:0.5                  10% of TRSMs hang for 0.5 s (the
                                        watchdog requeues them sooner)

The four kinds map to the failure modes of Table-I kernel classes:

* ``transient`` — the dispatch raises
  :class:`~repro.utils.exceptions.TransientFaultError` *before* the
  kernel runs (a lost task activation);
* ``nan`` — the kernel runs, then its output tile is corrupted with NaN
  (a numerical breakdown caught by post-condition validation);
* ``oom`` — the dispatch raises
  :class:`~repro.utils.exceptions.PoolExhaustedError` (the
  :class:`~repro.runtime.memory_pool.MemoryPool` could not serve the
  task's workspace);
* ``stall`` — the task sleeps on the watchdog's cancellation event (a
  straggler worker); when the watchdog fires, the sleep aborts with
  :class:`~repro.utils.exceptions.StalledTaskError` and the task is
  requeued.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..utils.exceptions import (
    FaultSpecError,
    PoolExhaustedError,
    StalledTaskError,
    TransientFaultError,
)

__all__ = ["FaultKind", "FaultClause", "FaultPlan", "FaultInjector"]

_KINDS = ("transient", "nan", "oom", "stall")
_KERNELS = ("potrf", "trsm", "syrk", "gemm", "*")

#: Fault kind name (see module docstring for semantics).
FaultKind = str

_DEFAULT_STALL_S = 0.05


@dataclass(frozen=True)
class FaultClause:
    """One clause of a fault plan: *kind* faults on *kernel* at *rate*."""

    kind: FaultKind
    kernel: str  # potrf | trsm | syrk | gemm | *
    rate: float
    param: float = 0.0  # stall duration (s) for kind == "stall"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r} (expected one of {_KINDS})"
            )
        if self.kernel not in _KERNELS:
            raise FaultSpecError(
                f"unknown kernel {self.kernel!r} (expected one of {_KERNELS})"
            )
        if not (0.0 <= self.rate <= 1.0):
            raise FaultSpecError(f"rate must be in [0, 1], got {self.rate}")
        if self.param < 0.0:
            raise FaultSpecError(f"param must be >= 0, got {self.param}")

    def matches(self, kernel: str) -> bool:
        return self.kernel == "*" or self.kernel == kernel


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable set of fault clauses.

    The plan is pure data; call :meth:`injector` for the stateful object
    the executors drive (it counts what actually fired).
    """

    clauses: tuple[FaultClause, ...]
    seed: int = 0

    @classmethod
    def parse(cls, spec: str, *, seed: int = 0) -> "FaultPlan":
        """Parse the ``kind:kernel:rate[:param]`` comma grammar above."""
        if not isinstance(spec, str) or not spec.strip():
            raise FaultSpecError(f"empty fault spec {spec!r}")
        clauses = []
        for raw in spec.split(","):
            parts = raw.strip().split(":")
            if len(parts) not in (3, 4):
                raise FaultSpecError(
                    f"clause {raw.strip()!r} is not kind:kernel:rate[:param]"
                )
            kind, kernel = parts[0].strip().lower(), parts[1].strip().lower()
            try:
                rate = float(parts[2])
            except ValueError as exc:
                raise FaultSpecError(
                    f"clause {raw.strip()!r} has a non-numeric rate"
                ) from exc
            param = _DEFAULT_STALL_S if kind == "stall" else 0.0
            if len(parts) == 4:
                try:
                    param = float(parts[3])
                except ValueError as exc:
                    raise FaultSpecError(
                        f"clause {raw.strip()!r} has a non-numeric param"
                    ) from exc
            clauses.append(FaultClause(kind, kernel, rate, param))
        return cls(clauses=tuple(clauses), seed=seed)

    def injector(self) -> "FaultInjector":
        """A fresh stateful injector for one execution of this plan."""
        return FaultInjector(self)


def _fires(seed: int, clause_idx: int, clause: FaultClause, tid: tuple,
           attempt: int) -> bool:
    """The deterministic coin flip for one (clause, task, attempt).

    A SHA-256 digest of the identifying tuple is mapped to [0, 1); the
    draw depends on nothing else — not the scheduler, not the worker
    count, not previous draws — which is what makes chaos runs exactly
    reproducible across executors.
    """
    tid_str = ":".join([tid[0].name, *(str(x) for x in tid[1:])])
    key = f"{seed}|{clause_idx}|{clause.kind}|{tid_str}|{attempt}"
    digest = hashlib.sha256(key.encode("ascii")).digest()
    draw = int.from_bytes(digest[:8], "big") / 2**64
    return draw < clause.rate


@dataclass
class FaultInjector:
    """Stateful driver of a :class:`FaultPlan` for one execution.

    The executors call :meth:`pre_dispatch` at the task-dispatch boundary
    (before the kernel) and :meth:`corrupt_output` after it.  ``counts``
    records what fired, keyed by fault kind; access is thread-safe.
    """

    plan: FaultPlan
    counts: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def total(self) -> int:
        with self._lock:
            return sum(self.counts.values())

    def _record(self, kind: str, kernel: str) -> None:
        with self._lock:
            self.counts[kind] = self.counts.get(kind, 0) + 1
        # Lazy import keeps repro.testing importable without repro.obs.
        from .. import obs

        obs.counter_add("fault_injected", kind=kind, kernel=kernel)

    def pre_dispatch(
        self,
        tid: tuple,
        attempt: int,
        cancel_event: threading.Event | None = None,
    ) -> None:
        """Fire dispatch-boundary faults for this (task, attempt).

        Raises ``TransientFaultError`` / ``PoolExhaustedError``, or — for
        stalls — sleeps on ``cancel_event`` and raises
        ``StalledTaskError`` if the watchdog cancels the wait.  Without a
        cancel event the stall is a plain sleep (slow task, no failure).
        """
        kernel = tid[0].name.lower()
        for idx, clause in enumerate(self.plan.clauses):
            if not clause.matches(kernel) or clause.kind == "nan":
                continue
            if not _fires(self.plan.seed, idx, clause, tid, attempt):
                continue
            self._record(clause.kind, kernel)
            if clause.kind == "transient":
                raise TransientFaultError(
                    f"injected transient fault on {tid} (attempt {attempt})",
                    tid,
                )
            if clause.kind == "oom":
                raise PoolExhaustedError(
                    f"injected MemoryPool exhaustion on {tid} "
                    f"(attempt {attempt})",
                    tid,
                )
            # stall: cooperative straggler simulation
            if cancel_event is not None:
                if cancel_event.wait(clause.param):
                    raise StalledTaskError(
                        f"task {tid} stalled past the watchdog timeout "
                        f"(attempt {attempt})",
                        tid,
                    )
            else:
                time.sleep(clause.param)

    def corrupt_output(self, tid: tuple, attempt: int, tile) -> bool:
        """NaN-corrupt the task's output tile if a ``nan`` clause fires.

        Returns True when a corruption was applied (post-condition
        validation then detects it and rolls the task back).
        """
        kernel = tid[0].name.lower()
        for idx, clause in enumerate(self.plan.clauses):
            if clause.kind != "nan" or not clause.matches(kernel):
                continue
            if not _fires(self.plan.seed, idx, clause, tid, attempt):
                continue
            data = getattr(tile, "data", None)
            if data is None:  # LowRankTile
                if tile.rank == 0:
                    continue  # nothing to corrupt deterministically
                data = tile.u
            data.flat[0] = np.nan
            self._record("nan", kernel)
            return True
        return False
