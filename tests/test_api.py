"""Unit tests for the TLRSolver facade."""

import numpy as np
import pytest

from repro import TLRSolver, st_3d_exp_problem
from repro.utils import ConfigurationError


@pytest.fixture(scope="module")
def api_problem():
    return st_3d_exp_problem(512, 64, seed=23)


class TestConstruction:
    def test_auto_band(self, api_problem):
        s = TLRSolver.from_problem(api_problem, accuracy=1e-8)
        assert s.decision is not None
        assert s.band_size == s.decision.band_size

    def test_forced_band(self, api_problem):
        s = TLRSolver.from_problem(api_problem, accuracy=1e-8, band_size=3)
        assert s.band_size == 3
        assert s.decision is None

    def test_rejects_bad_band(self, api_problem):
        with pytest.raises(ConfigurationError):
            TLRSolver.from_problem(api_problem, band_size=2.5)

    def test_maxrank_cap_applied(self, api_problem):
        s = TLRSolver.from_problem(
            api_problem, accuracy=1e-8, band_size=1, maxrank=8
        )
        _, _, mx = s.matrix.rank_stats()
        assert mx <= 8


class TestLifecycle:
    def test_factorize_then_solve(self, api_problem):
        a = api_problem.dense()
        s = TLRSolver.from_problem(api_problem, accuracy=1e-8)
        s.factorize()
        x_true = np.random.default_rng(5).standard_normal(512)
        x = s.solve(a @ x_true)
        assert np.linalg.norm(x - x_true) / np.linalg.norm(x_true) < 1e-6

    def test_double_factorize_rejected(self, api_problem):
        s = TLRSolver.from_problem(api_problem, accuracy=1e-8)
        s.factorize()
        with pytest.raises(ConfigurationError):
            s.factorize()

    def test_solve_before_factorize_rejected(self, api_problem):
        s = TLRSolver.from_problem(api_problem, accuracy=1e-8)
        with pytest.raises(ConfigurationError):
            s.solve(np.zeros(512))

    def test_log_likelihood(self, api_problem):
        z = api_problem.sample_measurements(seed=1)
        s = TLRSolver.from_problem(api_problem, accuracy=1e-8)
        s.factorize()
        ll = s.log_likelihood(z)
        assert np.isfinite(ll)

    def test_is_factorized_flag(self, api_problem):
        s = TLRSolver.from_problem(api_problem, accuracy=1e-8)
        assert not s.is_factorized
        s.factorize()
        assert s.is_factorized

    def test_memory_report_available_anytime(self, api_problem):
        s = TLRSolver.from_problem(api_problem, accuracy=1e-8)
        rep = s.memory_report()
        assert rep.dynamic_elements > 0
