"""Unit tests for CovarianceProblem (the STARS-H substitute)."""

import numpy as np
import pytest

from repro.statistics import CovarianceProblem, st_3d_exp_problem
from repro.utils import ConfigurationError, ProblemError


class TestGeometry:
    def test_ntiles_ceil(self, small_problem):
        assert small_problem.ntiles == 8  # 512 / 64

    def test_uneven_tiling(self):
        prob = st_3d_exp_problem(500, 64, seed=0)
        assert prob.ntiles == 8
        assert prob.tile_shape(7, 7) == (52, 52)
        assert prob.tile_shape(7, 0) == (52, 64)

    def test_tile_rows(self, small_problem):
        s = small_problem.tile_rows(2)
        assert (s.start, s.stop) == (128, 192)

    def test_tile_rows_out_of_range(self, small_problem):
        with pytest.raises(ProblemError):
            small_problem.tile_rows(8)

    def test_rejects_tile_larger_than_n(self):
        with pytest.raises(ConfigurationError):
            st_3d_exp_problem(100, 128)


class TestAssembly:
    def test_tiles_assemble_to_dense(self, small_problem, small_dense):
        nt, b = small_problem.ntiles, small_problem.tile_size
        for i, j in [(0, 0), (3, 1), (7, 7), (5, 0)]:
            block = small_problem.tile(i, j)
            ref = small_dense[i * b : (i + 1) * b, j * b : (j + 1) * b]
            np.testing.assert_allclose(block, ref, atol=1e-14)

    def test_diagonal_tile_has_nugget(self):
        prob = st_3d_exp_problem(128, 64, seed=0, nugget=0.5)
        t = prob.tile(0, 0)
        # Distinct points: kernel diagonal is exactly 1, so diag = 1.5.
        np.testing.assert_allclose(np.diag(t), 1.5)

    def test_off_diagonal_tile_no_nugget(self):
        prob = st_3d_exp_problem(128, 64, seed=0, nugget=0.5)
        t01 = prob.tile(0, 1)
        assert t01.max() < 1.0

    def test_symmetry_via_transpose(self, small_problem):
        np.testing.assert_allclose(
            small_problem.tile(2, 5), small_problem.tile(5, 2).T, atol=1e-14
        )

    def test_dense_is_spd(self, small_dense):
        assert np.linalg.eigvalsh(small_dense).min() > 0

    def test_dense_guard(self):
        prob = st_3d_exp_problem(1000, 100, seed=0)
        prob.points = np.zeros((30_000, 3))  # fake a huge problem
        with pytest.raises(ProblemError, match="refusing"):
            prob.dense()


class TestSampling:
    def test_sample_shape(self, small_problem):
        z = small_problem.sample_measurements(seed=1)
        assert z.shape == (512,)

    def test_multi_sample_shape(self, small_problem):
        z = small_problem.sample_measurements(seed=1, n_samples=3)
        assert z.shape == (512, 3)

    def test_sample_covariance_statistics(self):
        """Empirical variance of z entries should be near theta1 + nugget."""
        prob = st_3d_exp_problem(256, 64, seed=0, nugget=1e-6)
        z = prob.sample_measurements(seed=5, n_samples=200)
        emp_var = z.var()
        assert 0.7 < emp_var < 1.3

    def test_deterministic(self, small_problem):
        np.testing.assert_array_equal(
            small_problem.sample_measurements(seed=3),
            small_problem.sample_measurements(seed=3),
        )


class TestSt3dExpFactory:
    def test_points_in_unit_cube(self, small_problem):
        assert small_problem.points.min() >= 0.0
        assert small_problem.points.max() <= 1.0

    def test_points_are_3d(self, small_problem):
        assert small_problem.ndim == 3

    def test_morton_ordered(self, small_problem):
        d = np.linalg.norm(np.diff(small_problem.points, axis=0), axis=1)
        # Morton-ordered consecutive points are close on average.
        assert d.mean() < 0.25
