"""Unit tests for tile data structures."""

import numpy as np
import pytest

from repro.linalg import DenseTile, LowRankTile, TileFormat
from repro.utils import KernelError


class TestDenseTile:
    def test_shape_and_format(self):
        t = DenseTile(np.zeros((4, 6)))
        assert t.shape == (4, 6)
        assert t.format is TileFormat.DENSE

    def test_rank_is_min_dim(self):
        assert DenseTile(np.zeros((4, 6))).rank == 4

    def test_to_dense_is_view(self):
        data = np.eye(3)
        t = DenseTile(data)
        assert t.to_dense() is t.data

    def test_memory_elements(self):
        assert DenseTile(np.zeros((4, 6))).memory_elements() == 24

    def test_memory_ignores_maxrank(self):
        assert DenseTile(np.zeros((4, 4))).memory_elements(maxrank=2) == 16

    def test_copy_is_deep(self):
        t = DenseTile(np.zeros((2, 2)))
        c = t.copy()
        c.data[0, 0] = 5.0
        assert t.data[0, 0] == 0.0

    def test_rejects_non_2d(self):
        with pytest.raises(KernelError):
            DenseTile(np.zeros(5))

    def test_coerces_dtype(self):
        assert DenseTile(np.zeros((2, 2), dtype=np.float32)).data.dtype == np.float64


class TestLowRankTile:
    def test_reconstruction(self):
        rng = np.random.default_rng(0)
        u, v = rng.standard_normal((6, 2)), rng.standard_normal((5, 2))
        t = LowRankTile(u, v)
        assert t.shape == (6, 5)
        assert t.rank == 2
        np.testing.assert_allclose(t.to_dense(), u @ v.T)

    def test_format(self):
        assert LowRankTile(np.zeros((3, 1)), np.zeros((3, 1))).format is TileFormat.LOW_RANK

    def test_rank_mismatch_rejected(self):
        with pytest.raises(KernelError, match="rank mismatch"):
            LowRankTile(np.zeros((3, 2)), np.zeros((3, 3)))

    def test_zero_tile(self):
        t = LowRankTile.zero(4, 7)
        assert t.rank == 0
        assert t.shape == (4, 7)
        np.testing.assert_array_equal(t.to_dense(), np.zeros((4, 7)))

    def test_dynamic_memory(self):
        t = LowRankTile(np.zeros((10, 3)), np.zeros((8, 3)))
        assert t.memory_elements() == (10 + 8) * 3

    def test_static_memory_uses_maxrank(self):
        t = LowRankTile(np.zeros((10, 3)), np.zeros((8, 3)))
        assert t.memory_elements(maxrank=5) == (10 + 8) * 5

    def test_copy_is_deep(self):
        t = LowRankTile(np.ones((3, 1)), np.ones((3, 1)))
        c = t.copy()
        c.u[0, 0] = 9.0
        assert t.u[0, 0] == 1.0

    def test_rejects_non_2d_factors(self):
        with pytest.raises(KernelError):
            LowRankTile(np.zeros(3), np.zeros((3, 1)))
