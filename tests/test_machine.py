"""Unit tests for the machine and kernel-rate models."""

import pytest

from repro.linalg import KernelClass
from repro.runtime import SHAHEEN_II_LIKE, KernelRateModel, MachineSpec
from repro.utils import ConfigurationError


class TestKernelRateModel:
    def test_dense_kernels_at_full_rate(self):
        m = KernelRateModel()
        for k in (KernelClass.GEMM_DENSE, KernelClass.TRSM_DENSE, KernelClass.SYRK_DENSE):
            assert m.efficiency(k, 2400, 0) == 1.0

    def test_potrf_below_gemm(self):
        m = KernelRateModel()
        assert 0 < m.efficiency(KernelClass.POTRF_DENSE, 2400, 0) < 1.0

    def test_lr_gemm_peak_near_one_third(self):
        """Fig. 2a: TLR GEMM reaches about 1/3 of dense throughput."""
        m = KernelRateModel()
        b = 2400
        effs = [m.efficiency(KernelClass.GEMM_LR, b, k) for k in range(8, b // 2, 8)]
        assert 0.25 < max(effs) < 0.40

    def test_lr_gemm_tapers_at_both_ends(self):
        """Fig. 2a: performance tapers off at both ends of rank."""
        m = KernelRateModel()
        b = 2400
        lo = m.efficiency(KernelClass.GEMM_LR, b, 4)
        hi = m.efficiency(KernelClass.GEMM_LR, b, b)
        mid = m.efficiency(KernelClass.GEMM_LR, b, 200)
        assert lo < mid and hi < mid

    def test_seconds_scale_with_flops(self):
        m = KernelRateModel()
        t1 = m.seconds(KernelClass.GEMM_DENSE, 1e9, 2400, 0)
        t2 = m.seconds(KernelClass.GEMM_DENSE, 2e9, 2400, 0)
        assert t2 == pytest.approx(2 * t1)

    def test_zero_flops_zero_time(self):
        assert KernelRateModel().seconds(KernelClass.GEMM_DENSE, 0.0, 64, 0) == 0.0


class TestMachineSpec:
    def test_defaults_shaheen_like(self):
        assert SHAHEEN_II_LIKE.nodes == 16
        assert SHAHEEN_II_LIKE.memory_per_node_GB == 128.0

    def test_total_cores(self):
        assert MachineSpec(nodes=4, cores_per_node=8).total_cores == 32

    def test_with_nodes_preserves_rest(self):
        m = MachineSpec(nodes=4, latency_s=5e-6)
        m2 = m.with_nodes(64)
        assert m2.nodes == 64
        assert m2.latency_s == 5e-6

    def test_transfer_seconds(self):
        m = MachineSpec(latency_s=1e-6, bandwidth_Bps=1e9)
        assert m.transfer_seconds(1_000_000) == pytest.approx(1e-6 + 1e-3)

    def test_transfer_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            MachineSpec().transfer_seconds(-1)

    def test_rejects_bad_broadcast(self):
        with pytest.raises(ConfigurationError):
            MachineSpec(broadcast="ring")

    def test_rejects_zero_nodes(self):
        with pytest.raises(ConfigurationError):
            MachineSpec(nodes=0)

    def test_linpack_consistency(self):
        """Default rates reproduce the paper's ~14.3 Tflop/s on 16 nodes
        within a factor accounting for per-node core count (31 workers)."""
        m = SHAHEEN_II_LIKE
        aggregate = m.total_cores * m.rates.dense_gflops / 1000.0  # Tflop/s
        assert 10.0 < aggregate < 20.0
