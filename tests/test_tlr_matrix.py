"""Unit tests for the BandTLRMatrix container."""

import numpy as np
import pytest

from repro.linalg import DenseTile, LowRankTile
from repro.matrix import BandTLRMatrix
from repro.utils import ConfigurationError


class TestConstruction:
    def test_band1_layout(self, small_problem, rule8):
        m = BandTLRMatrix.from_problem(small_problem, rule8, band_size=1)
        assert m.is_dense(0, 0)
        assert not m.is_dense(1, 0)
        assert not m.is_dense(7, 0)

    def test_band3_layout(self, small_problem, rule8):
        m = BandTLRMatrix.from_problem(small_problem, rule8, band_size=3)
        assert m.is_dense(2, 0)
        assert not m.is_dense(3, 0)

    def test_full_dense_layout(self, small_problem, rule8):
        m = BandTLRMatrix.from_problem(small_problem, rule8, band_size=8)
        assert all(m.is_dense(i, j) for (i, j) in m.desc.lower_tiles())

    def test_reconstruction_error_within_eps(self, small_problem, small_dense, rule8):
        m = BandTLRMatrix.from_problem(small_problem, rule8, band_size=1)
        assert m.compression_error(small_dense) < 1e-6

    def test_from_dense_equivalent(self, small_problem, small_dense, rule8):
        m1 = BandTLRMatrix.from_problem(small_problem, rule8, band_size=2)
        m2 = BandTLRMatrix.from_dense(small_dense, 64, rule8, band_size=2)
        np.testing.assert_allclose(m1.to_dense(), m2.to_dense(), atol=1e-9)

    def test_from_dense_rejects_rectangular(self, rule8):
        with pytest.raises(ConfigurationError):
            BandTLRMatrix.from_dense(np.zeros((4, 6)), 2, rule8)


class TestAccess:
    def test_upper_triangle_rejected(self, small_tlr):
        with pytest.raises(ConfigurationError):
            small_tlr.tile(0, 1)

    def test_set_tile_shape_checked(self, small_tlr):
        with pytest.raises(ConfigurationError):
            small_tlr.set_tile(1, 0, DenseTile(np.zeros((3, 3))))

    def test_set_and_get(self, small_tlr):
        t = DenseTile(np.ones((64, 64)))
        small_tlr.set_tile(3, 1, t)
        assert small_tlr.tile(3, 1) is t


class TestRankReporting:
    def test_rank_grid_marks_dense(self, small_problem, rule8):
        m = BandTLRMatrix.from_problem(small_problem, rule8, band_size=2)
        g = m.rank_grid()
        assert g[0, 0] == -1  # diagonal dense
        assert g[1, 0] == -1  # on band
        assert g[2, 0] >= 0  # compressed

    def test_rank_grid_upper_is_minus_one(self, small_tlr):
        g = small_tlr.rank_grid()
        assert np.all(g[np.triu_indices_from(g, 1)] == -1)

    def test_rank_stats(self, small_tlr):
        mn, avg, mx = small_tlr.rank_stats()
        assert 0 < mn <= avg <= mx <= 64

    def test_rank_stats_dense_matrix(self, small_problem, rule8):
        m = BandTLRMatrix.from_problem(small_problem, rule8, band_size=8)
        assert m.rank_stats() == (0, 0.0, 0)


class TestMemoryAccounting:
    def test_dense_band_counts_full_tiles(self, small_problem, rule8):
        m = BandTLRMatrix.from_problem(small_problem, rule8, band_size=8)
        assert m.memory_elements() == 36 * 64 * 64

    def test_static_vs_dynamic(self, small_tlr):
        dyn = small_tlr.memory_elements()
        stat = small_tlr.memory_elements(static_maxrank=32)
        # Static accounts every compressed tile at 2*b*32.
        n_lr = sum(
            1 for t in small_tlr.tiles.values() if isinstance(t, LowRankTile)
        )
        assert stat == 8 * 64 * 64 + n_lr * 2 * 64 * 32
        assert dyn != stat


class TestBandRegeneration:
    def test_widening_band_densifies(self, small_problem, rule8):
        m1 = BandTLRMatrix.from_problem(small_problem, rule8, band_size=1)
        m3 = m1.with_band_size(3, small_problem)
        assert m3.band_size == 3
        assert m3.is_dense(2, 0)
        assert not m3.is_dense(3, 0)

    def test_widening_preserves_matrix(self, small_problem, small_dense, rule8):
        m1 = BandTLRMatrix.from_problem(small_problem, rule8, band_size=1)
        m3 = m1.with_band_size(3, small_problem)
        assert m3.compression_error(small_dense) < 1e-6

    def test_off_band_tiles_shared_not_copied(self, small_problem, rule8):
        m1 = BandTLRMatrix.from_problem(small_problem, rule8, band_size=1)
        m3 = m1.with_band_size(3, small_problem)
        assert m3.tile(7, 0) is m1.tile(7, 0)

    def test_narrowing_band_compresses(self, small_problem, rule8):
        m3 = BandTLRMatrix.from_problem(small_problem, rule8, band_size=3)
        m1 = m3.with_band_size(1, small_problem)
        assert not m1.is_dense(1, 0)

    def test_geometry_mismatch_rejected(self, small_problem, rule8):
        from repro import st_3d_exp_problem

        other = st_3d_exp_problem(256, 64, seed=0)
        m = BandTLRMatrix.from_problem(small_problem, rule8, band_size=1)
        with pytest.raises(ConfigurationError):
            m.with_band_size(2, other)


class TestConversion:
    def test_to_dense_symmetric(self, small_tlr):
        a = small_tlr.to_dense()
        np.testing.assert_allclose(a, a.T, atol=1e-12)

    def test_lower_only(self, small_tlr):
        a = small_tlr.to_dense(lower_only=True)
        assert np.all(np.triu(a, 64) == 0.0)

    def test_copy_independent(self, small_tlr):
        c = small_tlr.copy()
        c.tile(0, 0).data[0, 0] = 99.0
        assert small_tlr.tile(0, 0).data[0, 0] != 99.0
