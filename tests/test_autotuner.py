"""Unit tests for the BAND_SIZE auto-tuner (Algorithm 1)."""

import numpy as np
import pytest

from repro.analysis import RankModel
from repro.matrix import BandTLRMatrix
from repro.core import (
    autotune_matrix,
    subdiagonal_costs,
    subdiagonal_maxranks,
    tune_band_size,
)
from repro.utils import ConfigurationError


def grid_from_model(model, nt):
    return model.to_rank_grid(nt)


class TestSubdiagonalMaxranks:
    def test_reads_max_per_subdiagonal(self):
        g = np.full((4, 4), -1, dtype=np.int64)
        g[1, 0], g[2, 1], g[3, 2] = 5, 9, 3
        g[2, 0], g[3, 1] = 7, 2
        g[3, 0] = 1
        assert subdiagonal_maxranks(g) == [9, 7, 1]

    def test_all_dense_subdiagonal_is_minus_one(self):
        g = np.full((4, 4), -1, dtype=np.int64)
        g[3, 0] = 6
        assert subdiagonal_maxranks(g) == [-1, -1, 6]


class TestSubdiagonalCosts:
    def test_counts(self):
        model = RankModel(tile_size=128, k1=40, alpha=1.0)
        costs = subdiagonal_costs(
            subdiagonal_maxranks(grid_from_model(model, 10)), 10, 128
        )
        assert len(costs) == 9
        assert costs[0].band_id == 2
        assert costs[0].ntile == 9
        # GEMM count for sub-diagonal d: (nt-d)(nt-d-1)/2.
        assert costs[0].dense_flops == pytest.approx(
            36 * 2 * 128**3 + 9 * 128**3
        )

    def test_tlr_cheaper_far_from_diagonal(self):
        model = RankModel(tile_size=256, k1=120, alpha=1.2, kmin=4)
        costs = subdiagonal_costs(
            subdiagonal_maxranks(grid_from_model(model, 20)), 20, 256
        )
        assert costs[-1].tlr_flops < costs[-1].dense_flops

    def test_dense_subdiagonals_never_drive_decision(self):
        g = np.full((6, 6), -1, dtype=np.int64)  # fully dense already
        costs = subdiagonal_costs(subdiagonal_maxranks(g), 6, 64)
        for c in costs:
            assert c.dense_flops == c.tlr_flops


class TestTuneBandSize:
    def test_high_ranks_widen_band(self):
        # Ranks close to b make TLR GEMM more expensive than dense.
        high = RankModel(tile_size=128, k1=120, alpha=0.3, kmin=8)
        low = RankModel(tile_size=128, k1=8, alpha=1.0, kmin=2)
        d_high = tune_band_size(grid_from_model(high, 16), 128)
        d_low = tune_band_size(grid_from_model(low, 16), 128)
        assert d_high.band_size > d_low.band_size
        assert d_low.band_size == 1

    def test_fluctuation_monotone(self):
        model = RankModel(tile_size=128, k1=90, alpha=0.8, kmin=4)
        g = grid_from_model(model, 16)
        b_lo = tune_band_size(g, 128, fluctuation=0.67).band_size
        b_hi = tune_band_size(g, 128, fluctuation=1.0).band_size
        assert b_lo <= b_hi

    def test_band_size_range_brackets_choice(self):
        model = RankModel(tile_size=128, k1=90, alpha=0.8, kmin=4)
        d = tune_band_size(grid_from_model(model, 16), 128, fluctuation=0.8)
        lo, hi = d.band_size_range
        assert lo <= d.band_size <= hi

    def test_max_band_caps(self):
        model = RankModel(tile_size=64, k1=64, alpha=0.05, kmin=32)
        d = tune_band_size(grid_from_model(model, 12), 64, max_band=3)
        assert d.band_size <= 3

    def test_rejects_bad_fluctuation(self):
        with pytest.raises(ConfigurationError):
            tune_band_size(np.full((4, 4), -1), 64, fluctuation=0.0)

    def test_costs_exposed_for_fig6c(self):
        model = RankModel(tile_size=128, k1=60, alpha=0.9, kmin=4)
        d = tune_band_size(grid_from_model(model, 12), 128)
        assert len(d.costs) == 11
        assert all(c.maxrank >= 0 for c in d.costs)


class TestAutotuneMatrix:
    def test_pipeline_on_real_problem(self, medium_problem, medium_dense, rule8):
        m1 = BandTLRMatrix.from_problem(medium_problem, rule8, band_size=1)
        m_tuned, decision = autotune_matrix(m1, medium_problem)
        assert m_tuned.band_size == decision.band_size
        # Regenerated matrix still represents the same operator.
        assert m_tuned.compression_error(medium_dense) < 1e-6

    def test_band_unchanged_returns_same_object(self, medium_problem, rule8):
        m1 = BandTLRMatrix.from_problem(medium_problem, rule8, band_size=1)
        decision = tune_band_size(m1.rank_grid(), m1.desc.tile_size)
        m_tuned, _ = autotune_matrix(m1, medium_problem)
        if decision.band_size == 1:
            assert m_tuned is m1
        else:
            assert m_tuned.band_size == decision.band_size
