"""Unit + property tests for process grids and data distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution import (
    BandDistribution,
    OneDBlockCyclic,
    ProcessGrid,
    TwoDBlockCyclic,
    load_per_process,
)
from repro.utils import ConfigurationError, DistributionError


class TestProcessGrid:
    def test_size(self):
        assert ProcessGrid(3, 4).size == 12

    def test_rank_layout_row_major(self):
        g = ProcessGrid(2, 3)
        assert g.rank_of(0, 0) == 0
        assert g.rank_of(0, 2) == 2
        assert g.rank_of(1, 0) == 3

    def test_rank_wraps_modulo(self):
        g = ProcessGrid(2, 3)
        assert g.rank_of(2, 3) == g.rank_of(0, 0)

    def test_coords_inverse(self):
        g = ProcessGrid(3, 4)
        for r in range(g.size):
            assert g.rank_of(*g.coords_of(r)) == r

    def test_coords_out_of_range(self):
        with pytest.raises(ValueError):
            ProcessGrid(2, 2).coords_of(4)

    @pytest.mark.parametrize(
        "size,p,q", [(12, 3, 4), (16, 4, 4), (7, 1, 7), (64, 8, 8), (2, 1, 2)]
    )
    def test_squarest(self, size, p, q):
        g = ProcessGrid.squarest(size)
        assert (g.p, g.q) == (p, q)
        assert g.p <= g.q  # paper's "P <= Q" convention


class TestTwoDBlockCyclic:
    def test_owner_formula(self):
        d = TwoDBlockCyclic(ProcessGrid(2, 3))
        assert d.owner(0, 0) == 0
        assert d.owner(2, 0) == 0  # 2 mod 2 = 0
        assert d.owner(1, 1) == 4

    def test_rejects_upper_triangle(self):
        d = TwoDBlockCyclic(ProcessGrid(2, 2))
        with pytest.raises(DistributionError):
            d.owner(0, 1)

    def test_coverage_balanced(self):
        d = TwoDBlockCyclic(ProcessGrid(2, 2))
        load = load_per_process(d, 16)
        total = 16 * 17 // 2
        assert load.sum() == total
        assert load.max() / load.min() < 1.5


class TestOneDBlockCyclic:
    def test_row_axis(self):
        d = OneDBlockCyclic(4, axis="row")
        assert d.owner(5, 2) == 1
        assert d.owner(5, 0) == 1  # whole row same owner

    def test_column_axis(self):
        d = OneDBlockCyclic(4, axis="column")
        assert d.owner(5, 2) == 2

    def test_subdiagonal_axis_spreads_evenly(self):
        d = OneDBlockCyclic(4, axis="subdiagonal")
        owners = [d.owner(j + 3, j) for j in range(8)]
        # Positions along the sub-diagonal cycle through all processes.
        assert owners == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_rejects_bad_axis(self):
        with pytest.raises(ConfigurationError):
            OneDBlockCyclic(4, axis="diagonal")


class TestBandDistribution:
    def test_on_band_row_based(self):
        d = BandDistribution(ProcessGrid(2, 2), band_size=2, uplo="lower")
        # (5, 4) is on band -> owner = 5 mod 4 = 1.
        assert d.on_band(5, 4)
        assert d.owner(5, 4) == 1
        assert d.owner(5, 5) == 1  # same row -> same owner

    def test_off_band_uses_grid(self):
        g = ProcessGrid(2, 2)
        d = BandDistribution(g, band_size=2)
        assert not d.on_band(5, 1)
        assert d.owner(5, 1) == TwoDBlockCyclic(g).owner(5, 1)

    def test_upper_variant_column_based(self):
        d = BandDistribution(ProcessGrid(2, 2), band_size=2, uplo="upper")
        assert d.owner(5, 4) == 0  # j mod 4

    def test_panel_trsms_land_on_distinct_processes(self):
        """The design goal: dense TRSMs of one panel run in parallel."""
        d = BandDistribution(ProcessGrid(2, 2), band_size=4, uplo="lower")
        k = 3
        owners = [d.owner(m, k) for m in range(k + 1, k + 4)]  # on-band rows
        assert len(set(owners)) == len(owners)

    def test_row_kernels_need_no_communication(self):
        """On-band tiles of one row share an owner (LOCAL chain edges)."""
        d = BandDistribution(ProcessGrid(2, 2), band_size=3, uplo="lower")
        i = 7
        owners = {d.owner(i, j) for j in range(5, 8)}  # |i-j| < 3
        assert len(owners) == 1


@given(
    nt=st.integers(1, 20),
    band=st.integers(1, 6),
    p=st.integers(1, 4),
    q=st.integers(1, 4),
)
@settings(max_examples=50, deadline=None)
def test_property_every_tile_has_exactly_one_owner(nt, band, p, q):
    """Total coverage: every lower tile maps to a valid process rank."""
    grid = ProcessGrid(p, q)
    dists = [
        TwoDBlockCyclic(grid),
        OneDBlockCyclic(grid.size, axis="row"),
        BandDistribution(grid, band_size=band),
    ]
    for d in dists:
        for i in range(nt):
            for j in range(i + 1):
                owner = d.owner(i, j)
                assert 0 <= owner < d.nprocs


@given(nt=st.integers(2, 24), band=st.integers(1, 8), size=st.integers(1, 8))
@settings(max_examples=50, deadline=None)
def test_property_band_partition_is_exact(nt, band, size):
    """on_band + off_band partitions the lower triangle exactly."""
    grid = ProcessGrid.squarest(size)
    d = BandDistribution(grid, band_size=band)
    on = sum(1 for i in range(nt) for j in range(i + 1) if d.on_band(i, j))
    off = sum(1 for i in range(nt) for j in range(i + 1) if not d.on_band(i, j))
    assert on + off == nt * (nt + 1) // 2
    from repro.matrix import TileDescriptor

    desc = TileDescriptor(nt * 4, 4)
    assert on == desc.count_on_band(band)


def test_load_per_process_with_weight():
    d = TwoDBlockCyclic(ProcessGrid(1, 1))
    load = load_per_process(d, 4, weight=lambda i, j: i + j)
    assert load[0] == sum(i + j for i in range(4) for j in range(i + 1))
