"""Unit tests for timing utilities and the exception hierarchy."""

import time

import pytest

from repro.utils import (
    CompressionError,
    ConfigurationError,
    DistributionError,
    KernelError,
    MemoryPoolError,
    NotPositiveDefiniteError,
    ProblemError,
    ReproError,
    RuntimeSystemError,
    SchedulingError,
    Stopwatch,
    Timer,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            ProblemError,
            CompressionError,
            KernelError,
            DistributionError,
            RuntimeSystemError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_not_positive_definite_is_kernel_error(self):
        assert issubclass(NotPositiveDefiniteError, KernelError)

    def test_scheduling_is_runtime_error(self):
        assert issubclass(SchedulingError, RuntimeSystemError)

    def test_memory_pool_is_runtime_error(self):
        assert issubclass(MemoryPoolError, RuntimeSystemError)

    def test_not_positive_definite_carries_tile_index(self):
        e = NotPositiveDefiniteError("boom", tile_index=(3, 3))
        assert e.tile_index == (3, 3)

    def test_tile_index_defaults_to_none(self):
        assert NotPositiveDefiniteError("boom").tile_index is None


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_elapsed_zero_before_use(self):
        assert Timer().elapsed == 0.0


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        for _ in range(3):
            with sw.measure("a"):
                pass
        assert sw.counts["a"] == 3
        assert sw.total("a") >= 0.0

    def test_mean(self):
        sw = Stopwatch()
        with sw.measure("x"):
            time.sleep(0.005)
        assert sw.mean("x") == pytest.approx(sw.total("x"))

    def test_unknown_phase_is_zero(self):
        sw = Stopwatch()
        assert sw.total("nope") == 0.0
        assert sw.mean("nope") == 0.0

    def test_accumulates_on_exception(self):
        sw = Stopwatch()
        with pytest.raises(ValueError):
            with sw.measure("bad"):
                raise ValueError
        assert sw.counts["bad"] == 1

    def test_report_contains_phases(self):
        sw = Stopwatch()
        with sw.measure("phase_a"):
            pass
        assert "phase_a" in sw.report()
