"""Unit + property tests for the JDF-like DSL compiler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import KernelClass
from repro.runtime import MachineSpec, build_cholesky_graph, simulate
from repro.runtime.jdf import (
    CHOLESKY_JDF,
    cholesky_graph_from_jdf,
    compile_jdf,
    parse_jdf,
)
from repro.distribution import ProcessGrid, TwoDBlockCyclic
from repro.utils import ConfigurationError

RANK = lambda i, j: max(4, 24 - 2 * (i - j))

MINI = """
# a one-task graph
task POTRF(k)
  range: k = 0..NT-1
  kind: POTRF
  kernel: POTRF_DENSE
  flops: b**3 / 3
  writes: k, k
  dep: POTRF(k-1) tile=(k-1, k-1) elems=b*b if k > 0
"""


def mini_env(nt=4, b=32):
    return {"NT": nt, "b": b, "band": 1, **{k.name: k for k in KernelClass}}


class TestParser:
    def test_parses_task_blocks(self):
        specs = parse_jdf(CHOLESKY_JDF)
        assert set(specs) == {"POTRF", "TRSM", "SYRK", "GEMM"}
        assert specs["GEMM"].indices == ["m", "n", "k"]
        assert len(specs["GEMM"].deps) == 3

    def test_comments_ignored(self):
        specs = parse_jdf(MINI)
        assert list(specs) == ["POTRF"]

    def test_rejects_statement_outside_task(self):
        with pytest.raises(ConfigurationError, match="outside"):
            parse_jdf("kind: POTRF")

    def test_rejects_duplicate_task(self):
        text = MINI + MINI
        with pytest.raises(ConfigurationError, match="duplicate"):
            parse_jdf(text)

    def test_rejects_bad_range(self):
        with pytest.raises(ConfigurationError, match="lo..hi"):
            parse_jdf("task T(i)\n  range: i = 5\n")

    def test_rejects_malformed_dep(self):
        with pytest.raises(ConfigurationError, match="malformed dep"):
            parse_jdf("task T(i)\n  dep: garbage\n")

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError, match="no tasks"):
            parse_jdf("# nothing here\n")


class TestCompiler:
    def test_mini_chain(self):
        g = compile_jdf(MINI, mini_env(nt=5))
        assert g.n_tasks == 5
        order = g.topological_order()
        assert [tid[1] for tid in order] == [0, 1, 2, 3, 4]

    def test_boundary_dep_skipped(self):
        """The k=0 instance has no k-1 predecessor (guard + range check)."""
        g = compile_jdf(MINI, mini_env())
        first = next(t for tid, t in g.tasks.items() if tid[1] == 0)
        assert first.deps == []

    def test_requires_env_keys(self):
        with pytest.raises(ConfigurationError, match="env must define"):
            compile_jdf(MINI, {"NT": 4})

    def test_kernel_must_be_kernelclass(self):
        text = MINI.replace("kernel: POTRF_DENSE", "kernel: 42")
        with pytest.raises(ConfigurationError, match="KernelClass"):
            compile_jdf(text, mini_env())

    def test_unknown_kind_rejected(self):
        text = MINI.replace("kind: POTRF", "kind: FROBNICATE")
        with pytest.raises(ConfigurationError, match="unknown kind"):
            compile_jdf(text, mini_env())

    def test_dep_on_unknown_task(self):
        text = MINI.replace("dep: POTRF(k-1)", "dep: NOPE(k-1)")
        with pytest.raises(ConfigurationError, match="unknown task"):
            compile_jdf(text, mini_env())


class TestCholeskyJdf:
    def test_identical_to_ptg_builder(self):
        g1 = cholesky_graph_from_jdf(8, 3, 256, RANK)
        g2 = build_cholesky_graph(8, 3, 256, RANK)
        assert set(g1.tasks) == set(g2.tasks)
        for tid in g1.tasks:
            t1, t2 = g1.tasks[tid], g2.tasks[tid]
            assert t1.kernel is t2.kernel
            assert t1.flops == pytest.approx(t2.flops)
            e1 = {(e.src, e.tile, e.elements) for e in t1.deps}
            e2 = {(e.src, e.tile, e.elements) for e in t2.deps}
            assert e1 == e2, tid

    def test_jdf_graph_simulates(self):
        g = cholesky_graph_from_jdf(6, 2, 128, RANK)
        res = simulate(
            g,
            TwoDBlockCyclic(ProcessGrid.squarest(2)),
            MachineSpec(nodes=2, cores_per_node=2),
        )
        assert res.makespan > 0


@given(nt=st.integers(2, 7), band=st.integers(1, 4), k=st.integers(2, 40))
@settings(max_examples=15, deadline=None)
def test_property_jdf_equals_ptg(nt, band, k):
    g1 = cholesky_graph_from_jdf(nt, band, 64, lambda i, j: k)
    g2 = build_cholesky_graph(nt, band, 64, lambda i, j: k)
    assert set(g1.tasks) == set(g2.tasks)
    assert g1.total_flops() == pytest.approx(g2.total_flops())
    assert g1.critical_path_flops() == pytest.approx(g2.critical_path_flops())
