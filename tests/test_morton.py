"""Unit + property tests for Morton (Z-order) encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    morton_argsort,
    morton_decode_2d,
    morton_decode_3d,
    morton_encode_2d,
    morton_encode_3d,
)
from repro.utils import ConfigurationError


class TestEncode2D:
    def test_origin_is_zero(self):
        assert morton_encode_2d(np.array([0]), np.array([0]))[0] == 0

    def test_unit_steps(self):
        # (1,0) -> 1, (0,1) -> 2, (1,1) -> 3: the Z pattern.
        assert morton_encode_2d(np.array([1]), np.array([0]))[0] == 1
        assert morton_encode_2d(np.array([0]), np.array([1]))[0] == 2
        assert morton_encode_2d(np.array([1]), np.array([1]))[0] == 3

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            morton_encode_2d(np.array([-1]), np.array([0]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            morton_encode_2d(np.array([4]), np.array([0]), bits=2)

    def test_rejects_bad_bits(self):
        with pytest.raises(ConfigurationError):
            morton_encode_2d(np.array([0]), np.array([0]), bits=40)


class TestEncode3D:
    def test_unit_steps(self):
        # (1,0,0) -> 1, (0,1,0) -> 2, (0,0,1) -> 4.
        assert morton_encode_3d(*(np.array([v]) for v in (1, 0, 0)))[0] == 1
        assert morton_encode_3d(*(np.array([v]) for v in (0, 1, 0)))[0] == 2
        assert morton_encode_3d(*(np.array([v]) for v in (0, 0, 1)))[0] == 4

    def test_max_coordinate_roundtrip(self):
        m = (1 << 21) - 1
        code = morton_encode_3d(np.array([m]), np.array([m]), np.array([m]))
        x, y, z = morton_decode_3d(code)
        assert (x[0], y[0], z[0]) == (m, m, m)


@given(
    st.lists(
        st.tuples(
            st.integers(0, 2**20 - 1),
            st.integers(0, 2**20 - 1),
        ),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=50, deadline=None)
def test_roundtrip_2d(coords):
    ix = np.array([c[0] for c in coords])
    iy = np.array([c[1] for c in coords])
    x2, y2 = morton_decode_2d(morton_encode_2d(ix, iy))
    np.testing.assert_array_equal(x2, ix)
    np.testing.assert_array_equal(y2, iy)


@given(
    st.lists(
        st.tuples(
            st.integers(0, 2**21 - 1),
            st.integers(0, 2**21 - 1),
            st.integers(0, 2**21 - 1),
        ),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=50, deadline=None)
def test_roundtrip_3d(coords):
    ix = np.array([c[0] for c in coords])
    iy = np.array([c[1] for c in coords])
    iz = np.array([c[2] for c in coords])
    x2, y2, z2 = morton_decode_3d(morton_encode_3d(ix, iy, iz))
    np.testing.assert_array_equal(x2, ix)
    np.testing.assert_array_equal(y2, iy)
    np.testing.assert_array_equal(z2, iz)


def test_encoding_is_monotone_per_octant():
    """Doubling all coordinates scales the code by 8 (3-D self-similarity)."""
    ix = np.arange(1, 100)
    code1 = morton_encode_3d(ix, ix, ix)
    code2 = morton_encode_3d(2 * ix, 2 * ix, 2 * ix)
    np.testing.assert_array_equal(code2, 8 * code1)


class TestMortonArgsort:
    def test_is_permutation(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(size=(200, 3))
        p = morton_argsort(pts)
        assert sorted(p.tolist()) == list(range(200))

    def test_empty(self):
        assert morton_argsort(np.zeros((0, 3))).size == 0

    def test_rejects_wrong_shape(self):
        with pytest.raises(ConfigurationError):
            morton_argsort(np.zeros((5, 4)))

    def test_deterministic(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(size=(100, 2))
        np.testing.assert_array_equal(morton_argsort(pts), morton_argsort(pts))

    def test_improves_locality(self):
        """Mean consecutive-point distance should shrink vs a shuffled order."""
        rng = np.random.default_rng(2)
        pts = rng.uniform(size=(500, 3))
        ordered = pts[morton_argsort(pts)]
        d_ord = np.linalg.norm(np.diff(ordered, axis=0), axis=1).mean()
        d_rand = np.linalg.norm(np.diff(pts, axis=0), axis=1).mean()
        assert d_ord < 0.5 * d_rand

    def test_single_point(self):
        assert morton_argsort(np.array([[0.5, 0.5, 0.5]])).tolist() == [0]

    def test_degenerate_identical_points(self):
        pts = np.ones((10, 3)) * 0.3
        p = morton_argsort(pts)
        # Stable sort keeps original order on ties.
        assert p.tolist() == list(range(10))
