"""Unit tests for mixed-precision storage (paper future work)."""

import numpy as np
import pytest

from repro import TruncationRule, st_3d_exp_problem
from repro.core import tlr_cholesky
from repro.linalg import DenseTile, LowRankTile
from repro.linalg.precision import demote_matrix, quantize_tile
from repro.matrix import BandTLRMatrix
from repro.utils import ConfigurationError


@pytest.fixture(scope="module")
def problem():
    return st_3d_exp_problem(729, 81, seed=15, nugget=1e-2)


class TestQuantizeTile:
    def test_dense_roundoff_bounded(self):
        rng = np.random.default_rng(0)
        t = DenseTile(rng.standard_normal((20, 20)))
        q = quantize_tile(t, np.float32)
        err = np.abs(q.data - t.data).max() / np.abs(t.data).max()
        assert 0 < err < 1e-6

    def test_lowrank_factors_quantized(self):
        rng = np.random.default_rng(1)
        t = LowRankTile(rng.standard_normal((10, 3)), rng.standard_normal((10, 3)))
        q = quantize_tile(t, np.float32)
        assert q.rank == 3
        assert not np.array_equal(q.u, t.u)
        assert q.u.dtype == np.float64  # payload returned in working precision

    def test_float16_coarser_than_float32(self):
        rng = np.random.default_rng(2)
        t = DenseTile(rng.standard_normal((30, 30)))
        e32 = np.abs(quantize_tile(t, np.float32).data - t.data).max()
        e16 = np.abs(quantize_tile(t, np.float16).data - t.data).max()
        assert e16 > e32

    def test_rejects_unsupported_dtype(self):
        with pytest.raises(ConfigurationError):
            quantize_tile(DenseTile(np.eye(2)), np.int32)


class TestDemoteMatrix:
    def test_memory_halves_for_offband(self, problem):
        m = BandTLRMatrix.from_problem(problem, TruncationRule(eps=1e-6), 1)
        _, rep = demote_matrix(m, dtype=np.float32)
        assert rep.demoted_tiles > 0
        assert 1.0 < rep.saving_factor <= 2.0

    def test_near_band_preserved_exactly(self, problem):
        m = BandTLRMatrix.from_problem(problem, TruncationRule(eps=1e-6), 1)
        demoted, _ = demote_matrix(m, dtype=np.float32, min_distance=3)
        t_orig = m.tile(2, 0)
        t_new = demoted.tile(2, 0)
        np.testing.assert_array_equal(t_new.to_dense(), t_orig.to_dense())

    def test_demotion_error_at_fp32_level(self, problem):
        a = problem.dense()
        m = BandTLRMatrix.from_problem(problem, TruncationRule(eps=1e-12), 1)
        demoted, _ = demote_matrix(m, dtype=np.float32)
        err = np.linalg.norm(demoted.to_dense() - a) / np.linalg.norm(a)
        assert err < 1e-5  # fp32 storage noise, not catastrophic

    def test_factorization_after_demotion(self, problem):
        """ε=1e-6 compression + fp32 storage factorizes to ~ε accuracy."""
        a = problem.dense()
        m = BandTLRMatrix.from_problem(problem, TruncationRule(eps=1e-6), 1)
        demoted, rep = demote_matrix(m, dtype=np.float32)
        tlr_cholesky(demoted)
        l = demoted.to_dense(lower_only=True)
        err = np.linalg.norm(l @ l.T - a) / np.linalg.norm(a)
        assert err < 1e-4
        assert rep.saving_factor > 1.2

    def test_original_untouched(self, problem):
        m = BandTLRMatrix.from_problem(problem, TruncationRule(eps=1e-6), 1)
        before = m.to_dense()
        demote_matrix(m, dtype=np.float16)
        np.testing.assert_array_equal(m.to_dense(), before)

    def test_rejects_bad_distance(self, problem):
        m = BandTLRMatrix.from_problem(problem, TruncationRule(eps=1e-6), 1)
        with pytest.raises(ConfigurationError):
            demote_matrix(m, min_distance=0)
