"""Unit tests for mixed-precision storage (paper future work)."""

import numpy as np
import pytest

from repro import TruncationRule, st_3d_exp_problem
from repro.core import tlr_cholesky
from repro.linalg import DenseTile, LowRankTile
from repro.linalg.precision import (
    PrecisionPolicy,
    apply_precision,
    demote_matrix,
    quantize_tile,
    resolve_precision,
)
from repro.matrix import BandTLRMatrix
from repro.utils import ConfigurationError


@pytest.fixture(scope="module")
def problem():
    return st_3d_exp_problem(729, 81, seed=15, nugget=1e-2)


class TestQuantizeTile:
    def test_dense_roundoff_bounded(self):
        rng = np.random.default_rng(0)
        t = DenseTile(rng.standard_normal((20, 20)))
        q = quantize_tile(t, np.float32)
        err = np.abs(q.data - t.data).max() / np.abs(t.data).max()
        assert 0 < err < 1e-6

    def test_lowrank_factors_quantized(self):
        rng = np.random.default_rng(1)
        t = LowRankTile(rng.standard_normal((10, 3)), rng.standard_normal((10, 3)))
        q = quantize_tile(t, np.float32)
        assert q.rank == 3
        assert not np.array_equal(q.u, t.u)
        assert q.u.dtype == np.float64  # payload returned in working precision

    def test_float16_coarser_than_float32(self):
        rng = np.random.default_rng(2)
        t = DenseTile(rng.standard_normal((30, 30)))
        e32 = np.abs(quantize_tile(t, np.float32).data - t.data).max()
        e16 = np.abs(quantize_tile(t, np.float16).data - t.data).max()
        assert e16 > e32

    def test_rejects_unsupported_dtype(self):
        with pytest.raises(ConfigurationError):
            quantize_tile(DenseTile(np.eye(2)), np.int32)


class TestDemoteMatrix:
    def test_memory_halves_for_offband(self, problem):
        m = BandTLRMatrix.from_problem(problem, TruncationRule(eps=1e-6), 1)
        _, rep = demote_matrix(m, dtype=np.float32)
        assert rep.demoted_tiles > 0
        assert 1.0 < rep.saving_factor <= 2.0

    def test_near_band_preserved_exactly(self, problem):
        m = BandTLRMatrix.from_problem(problem, TruncationRule(eps=1e-6), 1)
        demoted, _ = demote_matrix(m, dtype=np.float32, min_distance=3)
        t_orig = m.tile(2, 0)
        t_new = demoted.tile(2, 0)
        np.testing.assert_array_equal(t_new.to_dense(), t_orig.to_dense())

    def test_demotion_error_at_fp32_level(self, problem):
        a = problem.dense()
        m = BandTLRMatrix.from_problem(problem, TruncationRule(eps=1e-12), 1)
        demoted, _ = demote_matrix(m, dtype=np.float32)
        err = np.linalg.norm(demoted.to_dense() - a) / np.linalg.norm(a)
        assert err < 1e-5  # fp32 storage noise, not catastrophic

    def test_factorization_after_demotion(self, problem):
        """ε=1e-6 compression + fp32 storage factorizes to ~ε accuracy."""
        a = problem.dense()
        m = BandTLRMatrix.from_problem(problem, TruncationRule(eps=1e-6), 1)
        demoted, rep = demote_matrix(m, dtype=np.float32)
        tlr_cholesky(demoted)
        l = demoted.to_dense(lower_only=True)
        err = np.linalg.norm(l @ l.T - a) / np.linalg.norm(a)
        assert err < 1e-4
        assert rep.saving_factor > 1.2

    def test_original_untouched(self, problem):
        m = BandTLRMatrix.from_problem(problem, TruncationRule(eps=1e-6), 1)
        before = m.to_dense()
        demote_matrix(m, dtype=np.float16)
        np.testing.assert_array_equal(m.to_dense(), before)

    def test_rejects_bad_distance(self, problem):
        m = BandTLRMatrix.from_problem(problem, TruncationRule(eps=1e-6), 1)
        with pytest.raises(ConfigurationError):
            demote_matrix(m, min_distance=0)


class TestAdaptiveComputePath:
    """The adaptive mixed-precision factorization path (PR 7 tentpole)."""

    @staticmethod
    def _factorize(problem, eps, precision, **kw):
        m = BandTLRMatrix.from_problem(
            problem, TruncationRule(eps=eps), 2, precision=precision
        )
        report = tlr_cholesky(m, precision=precision, **kw)
        return m, report

    @pytest.mark.parametrize("eps", [1e-4, 1e-6])
    def test_adaptive_accuracy_within_10x_of_fp64(self, problem, eps):
        a = problem.dense()

        def backward(m):
            l = m.to_dense(lower_only=True)
            return np.linalg.norm(l @ l.T - a) / np.linalg.norm(a)

        m64, _ = self._factorize(problem, eps, None)
        mad, rep = self._factorize(problem, eps, "adaptive")
        err64, errad = backward(m64), backward(mad)
        assert errad < 10 * max(err64, eps)
        assert rep.precision_report is not None
        assert rep.precision_report.mode == "adaptive"

    def test_adaptive_halves_offband_bytes(self, problem):
        _, rep = self._factorize(problem, 1e-4, "adaptive")
        pr = rep.precision_report
        assert pr.demoted_tiles > 0
        assert pr.offband_saving_factor == pytest.approx(2.0, rel=0.05)

    def test_tight_eps_falls_back_to_fp64(self, problem):
        """Below the fp32 ε floor the adaptive policy must not demote."""
        m, rep = self._factorize(problem, 1e-10, "adaptive")
        pr = rep.precision_report
        assert pr.demoted_tiles == 0
        assert pr.offband_saving_factor == pytest.approx(1.0)
        for tile in m.tiles.values():
            if isinstance(tile, LowRankTile):
                assert tile.dtype == np.float64

    def test_fp32_mode_demotes_unconditionally(self, problem):
        m, rep = self._factorize(problem, 1e-10, "fp32")
        assert rep.precision_report.demoted_tiles > 0

    def test_adaptive_with_batching_and_threads(self, problem):
        a = problem.dense()
        m, _ = self._factorize(problem, 1e-4, "adaptive", batch=True, n_workers=2)
        l = m.to_dense(lower_only=True)
        err = np.linalg.norm(l @ l.T - a) / np.linalg.norm(a)
        assert err < 1e-3

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            PrecisionPolicy(mode="fp16")
        with pytest.raises(ConfigurationError):
            PrecisionPolicy(fp32_eps_floor=0.0)
        with pytest.raises(ConfigurationError):
            resolve_precision(42)

    def test_apply_precision_round_trip(self, problem):
        m = BandTLRMatrix.from_problem(problem, TruncationRule(eps=1e-4), 1)
        before = {k: t.to_dense().copy() for k, t in m.tiles.items()}
        apply_precision(m, PrecisionPolicy(mode="adaptive"))
        assert any(
            isinstance(t, LowRankTile) and t.dtype == np.float32
            for t in m.tiles.values()
        )
        apply_precision(m, PrecisionPolicy(mode="fp64"))
        for k, t in m.tiles.items():
            if isinstance(t, LowRankTile):
                assert t.dtype == np.float64
            # fp32 round-trip loses the low bits, but stays at fp32 noise
            ref = before[k]
            scale = max(np.abs(ref).max(), 1e-30)
            assert np.abs(t.to_dense() - ref).max() / scale < 1e-5
