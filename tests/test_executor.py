"""Unit tests: the graph executor computes the same factor as the
sequential reference and drives the dynamic-memory machinery."""

import numpy as np
import pytest

from repro.matrix import BandTLRMatrix
from repro.core import tlr_cholesky
from repro.runtime import build_cholesky_graph, execute_graph
from repro.utils import RuntimeSystemError


def _rank_fn_for(matrix):
    grid = matrix.rank_grid()

    def rank(i, j):
        return int(max(grid[i, j], 1))

    return rank


class TestNumericalEquivalence:
    @pytest.mark.parametrize("band", [1, 2, 4])
    def test_matches_reference(self, small_problem, small_dense, rule8, band):
        ref = BandTLRMatrix.from_problem(small_problem, rule8, band_size=band)
        via_graph = ref.copy()
        tlr_cholesky(ref)

        g = build_cholesky_graph(
            via_graph.ntiles, band, 64, _rank_fn_for(via_graph)
        )
        execute_graph(g, via_graph)
        np.testing.assert_allclose(
            ref.to_dense(lower_only=True),
            via_graph.to_dense(lower_only=True),
            atol=1e-9,
        )

    def test_backward_error(self, small_problem, small_dense, rule8):
        m = BandTLRMatrix.from_problem(small_problem, rule8, band_size=2)
        g = build_cholesky_graph(m.ntiles, 2, 64, _rank_fn_for(m))
        execute_graph(g, m)
        l = m.to_dense(lower_only=True)
        err = np.linalg.norm(l @ l.T - small_dense) / np.linalg.norm(small_dense)
        assert err < 1e-6


class TestGuards:
    def test_band_mismatch_rejected(self, small_tlr):
        g = build_cholesky_graph(small_tlr.ntiles, 3, 64, lambda i, j: 8)
        with pytest.raises(RuntimeSystemError):
            execute_graph(g, small_tlr)

    def test_nt_mismatch_rejected(self, small_tlr):
        g = build_cholesky_graph(4, 1, 64, lambda i, j: 8)
        with pytest.raises(RuntimeSystemError):
            execute_graph(g, small_tlr)

    def test_expanded_graph_rejected(self, small_tlr):
        g = build_cholesky_graph(
            small_tlr.ntiles, 1, 64, lambda i, j: 8, recursive_split=2
        )
        with pytest.raises(RuntimeSystemError, match="expanded"):
            execute_graph(g, small_tlr)


class TestReporting:
    def test_task_count(self, small_tlr):
        g = build_cholesky_graph(small_tlr.ntiles, 1, 64, _rank_fn_for(small_tlr))
        rep = execute_graph(g, small_tlr)
        assert rep.tasks_executed == g.n_tasks

    def test_flops_recorded(self, small_tlr):
        g = build_cholesky_graph(small_tlr.ntiles, 1, 64, _rank_fn_for(small_tlr))
        rep = execute_graph(g, small_tlr)
        assert rep.counter.total > 0

    def test_pool_active_by_default(self, small_tlr):
        g = build_cholesky_graph(small_tlr.ntiles, 1, 64, _rank_fn_for(small_tlr))
        rep = execute_graph(g, small_tlr)
        assert rep.pool.stats.allocations + rep.pool.stats.reuses > 0

    def test_pool_disabled(self, small_tlr):
        g = build_cholesky_graph(small_tlr.ntiles, 1, 64, _rank_fn_for(small_tlr))
        rep = execute_graph(g, small_tlr, use_pool=False)
        assert rep.pool.stats.allocations == 0

    def test_memory_tracker_seeded(self, small_tlr):
        initial = small_tlr.memory_elements()
        g = build_cholesky_graph(small_tlr.ntiles, 1, 64, _rank_fn_for(small_tlr))
        rep = execute_graph(g, small_tlr)
        assert rep.tracker.peak_elements >= initial

    def test_max_rank_seen(self, small_tlr):
        g = build_cholesky_graph(small_tlr.ntiles, 1, 64, _rank_fn_for(small_tlr))
        rep = execute_graph(g, small_tlr)
        assert rep.max_rank_seen > 0
