"""Unit tests for multi-threshold rank analysis (one-SVD-pass spectra)."""

import numpy as np
import pytest

from repro import TruncationRule, st_3d_exp_problem
from repro.matrix import BandTLRMatrix
from repro.statistics import (
    rank_grids_for_thresholds,
    subdiagonal_singular_values,
)
from repro.utils import ProblemError


@pytest.fixture(scope="module")
def spectra_problem():
    return st_3d_exp_problem(384, 64, seed=5)


class TestSubdiagonalSingularValues:
    def test_covers_lower_offdiagonal(self, spectra_problem):
        s = subdiagonal_singular_values(spectra_problem)
        nt = spectra_problem.ntiles
        assert len(s) == nt * (nt - 1) // 2
        assert all(i > j for (i, j) in s)

    def test_values_descending(self, spectra_problem):
        s = subdiagonal_singular_values(spectra_problem)
        for vals in s.values():
            assert np.all(np.diff(vals) <= 1e-12)

    def test_max_subdiagonal_limits(self, spectra_problem):
        s = subdiagonal_singular_values(spectra_problem, max_subdiagonal=2)
        assert all(i - j <= 2 for (i, j) in s)

    def test_single_tile_rejected(self):
        prob = st_3d_exp_problem(64, 64, seed=0)
        with pytest.raises(ProblemError):
            subdiagonal_singular_values(prob)


class TestRankGridsForThresholds:
    def test_matches_direct_compression(self, spectra_problem):
        """The derived grid equals the grid from actually compressing."""
        eps = 1e-6
        grids = rank_grids_for_thresholds(spectra_problem, [eps])
        m = BandTLRMatrix.from_problem(
            spectra_problem, TruncationRule(eps=eps), band_size=1
        )
        np.testing.assert_array_equal(grids[eps], m.rank_grid())

    def test_monotone_in_threshold(self, spectra_problem):
        """Looser thresholds never increase any tile's rank."""
        grids = rank_grids_for_thresholds(spectra_problem, [1e-8, 1e-4, 1e-2])
        g_tight, g_mid, g_loose = grids[1e-8], grids[1e-4], grids[1e-2]
        mask = g_tight >= 0
        assert np.all(g_tight[mask] >= g_mid[mask])
        assert np.all(g_mid[mask] >= g_loose[mask])

    def test_diagonal_marked_dense(self, spectra_problem):
        grids = rank_grids_for_thresholds(spectra_problem, [1e-6])
        g = grids[1e-6]
        assert np.all(np.diag(g) == -1)
        assert np.all(g[np.triu_indices_from(g, 1)] == -1)

    def test_one_svd_pass_serves_all(self, spectra_problem):
        grids = rank_grids_for_thresholds(spectra_problem, [1e-10, 1e-6, 1e-2])
        assert set(grids) == {1e-10, 1e-6, 1e-2}
