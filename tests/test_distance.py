"""Unit + property tests for pairwise distances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra import numpy as hnp

from repro.geometry import block_distances, pairwise_distances
from repro.utils import ConfigurationError


class TestBlockDistances:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        x, y = rng.uniform(size=(7, 3)), rng.uniform(size=(5, 3))
        d = block_distances(x, y)
        naive = np.array([[np.linalg.norm(a - b) for b in y] for a in x])
        np.testing.assert_allclose(d, naive, atol=1e-12)

    def test_shape(self):
        d = block_distances(np.zeros((4, 2)), np.zeros((6, 2)))
        assert d.shape == (4, 6)

    def test_rejects_dim_mismatch(self):
        with pytest.raises(ConfigurationError):
            block_distances(np.zeros((3, 2)), np.zeros((3, 3)))

    def test_1d_input_promoted(self):
        d = block_distances(np.array([0.0, 1.0]), np.array([0.5]))
        np.testing.assert_allclose(d, [[0.5], [0.5]])

    def test_no_negative_under_roundoff(self):
        # Nearly identical points stress the subtraction formula.
        x = np.full((50, 3), 1e8) + np.random.default_rng(1).normal(
            scale=1e-6, size=(50, 3)
        )
        d = block_distances(x, x)
        assert np.all(d >= 0.0)
        assert np.all(np.isfinite(d))


class TestPairwiseDistances:
    def test_zero_diagonal(self):
        pts = np.random.default_rng(2).uniform(size=(20, 3))
        d = pairwise_distances(pts)
        np.testing.assert_array_equal(np.diag(d), np.zeros(20))

    def test_symmetry(self):
        pts = np.random.default_rng(3).uniform(size=(15, 2))
        d = pairwise_distances(pts)
        np.testing.assert_allclose(d, d.T, atol=1e-12)


@given(
    hnp.arrays(
        np.float64,
        hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=12).filter(
            lambda s: s[1] <= 3
        ),
        elements=hnp.from_dtype(
            np.dtype(np.float64), min_value=-100, max_value=100, allow_nan=False
        ),
    )
)
@settings(max_examples=40, deadline=None)
def test_triangle_inequality(pts):
    d = pairwise_distances(pts)
    n = d.shape[0]
    # d(i,k) <= d(i,j) + d(j,k) for all triples, with float tolerance.
    for i in range(min(n, 5)):
        for j in range(min(n, 5)):
            for k in range(min(n, 5)):
                assert d[i, k] <= d[i, j] + d[j, k] + 1e-7 * (1 + d.max())
