"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils import (
    ConfigurationError,
    check_in,
    check_index,
    check_matrix,
    check_nonnegative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
    check_square_matrix,
)


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int("x", 3) == 3

    def test_accepts_numpy_integer(self):
        assert check_positive_int("x", np.int64(5)) == 5

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError, match="x must be >= 1"):
            check_positive_int("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_positive_int("x", -2)

    def test_rejects_float(self):
        with pytest.raises(ConfigurationError, match="must be an integer"):
            check_positive_int("x", 2.5)

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            check_positive_int("x", True)

    def test_rejects_string(self):
        with pytest.raises(ConfigurationError):
            check_positive_int("x", "3")


class TestCheckNonnegativeInt:
    def test_accepts_zero(self):
        assert check_nonnegative_int("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_nonnegative_int("x", -1)


class TestCheckPositiveFloat:
    def test_accepts_float(self):
        assert check_positive_float("x", 0.5) == 0.5

    def test_accepts_int(self):
        assert check_positive_float("x", 2) == 2.0

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            check_positive_float("x", 0.0)

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            check_positive_float("x", float("nan"))

    def test_rejects_inf(self):
        with pytest.raises(ConfigurationError):
            check_positive_float("x", float("inf"))

    def test_rejects_non_numeric(self):
        with pytest.raises(ConfigurationError):
            check_positive_float("x", "abc")


class TestCheckProbability:
    @pytest.mark.parametrize("v", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, v):
        assert check_probability("p", v) == v

    @pytest.mark.parametrize("v", [-0.1, 1.1])
    def test_rejects_outside(self, v):
        with pytest.raises(ConfigurationError):
            check_probability("p", v)


class TestCheckIn:
    def test_accepts_member(self):
        assert check_in("mode", "a", ("a", "b")) == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ConfigurationError, match="must be one of"):
            check_in("mode", "c", ("a", "b"))


class TestCheckMatrix:
    def test_coerces_nested_list(self):
        m = check_matrix("m", [[1, 2], [3, 4]])
        assert m.shape == (2, 2)
        assert m.dtype == np.float64
        assert m.flags["C_CONTIGUOUS"]

    def test_rejects_1d(self):
        with pytest.raises(ConfigurationError, match="must be 2-D"):
            check_matrix("m", [1, 2, 3])

    def test_square_rejects_rectangular(self):
        with pytest.raises(ConfigurationError, match="must be square"):
            check_square_matrix("m", np.zeros((2, 3)))

    def test_square_accepts(self):
        assert check_square_matrix("m", np.eye(3)).shape == (3, 3)


class TestCheckIndex:
    def test_accepts_in_range(self):
        assert check_index("i", 2, 5) == 2

    def test_rejects_at_upper(self):
        with pytest.raises(ConfigurationError):
            check_index("i", 5, 5)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_index("i", -1, 5)
