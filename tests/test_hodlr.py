"""Unit tests for the HODLR baseline format."""

import numpy as np
import pytest

from repro import TruncationRule, st_3d_exp_problem
from repro.hodlr import HODLRMatrix, build_cluster_tree
from repro.statistics import st_2d_exp_problem
from repro.utils import ConfigurationError


class TestClusterTree:
    def test_leaves_partition_range(self):
        tree = build_cluster_tree(100, 16)
        leaves = list(tree.leaves())
        assert leaves[0].lo == 0
        assert leaves[-1].hi == 100
        for a, b in zip(leaves, leaves[1:]):
            assert a.hi == b.lo

    def test_leaf_size_respected(self):
        tree = build_cluster_tree(100, 16)
        assert all(leaf.size <= 16 for leaf in tree.leaves())

    def test_single_leaf(self):
        tree = build_cluster_tree(8, 16)
        assert tree.is_leaf
        assert tree.depth == 0

    def test_balanced_depth(self):
        tree = build_cluster_tree(256, 16)
        assert tree.depth == 4  # 256 -> 128 -> 64 -> 32 -> 16


@pytest.fixture(scope="module")
def problem3d():
    return st_3d_exp_problem(512, 64, seed=21)


@pytest.fixture(scope="module")
def dense3d(problem3d):
    return problem3d.dense()


class TestCompression:
    def test_reconstruction_error(self, problem3d, dense3d):
        h = HODLRMatrix.from_problem(problem3d, TruncationRule(eps=1e-8))
        assert h.compression_error(dense3d) < 1e-6

    def test_from_dense_matches_from_problem(self, problem3d, dense3d):
        rule = TruncationRule(eps=1e-8)
        h1 = HODLRMatrix.from_problem(problem3d, rule)
        h2 = HODLRMatrix.from_dense(dense3d, rule, 64)
        np.testing.assert_allclose(h1.to_dense(), h2.to_dense(), atol=1e-9)

    def test_block_count(self, problem3d):
        h = HODLRMatrix.from_problem(problem3d, TruncationRule(eps=1e-8))
        # A full dyadic tree over 512 with 64-leaves has 7 internal nodes.
        assert len(h.offdiag) == 7
        assert len(h.leaf_blocks) == 8

    def test_rejects_rectangular(self):
        with pytest.raises(ConfigurationError):
            HODLRMatrix.from_dense(np.zeros((4, 6)), TruncationRule(), 2)


class TestMatvec:
    def test_matches_dense(self, problem3d, dense3d):
        h = HODLRMatrix.from_problem(problem3d, TruncationRule(eps=1e-10))
        rng = np.random.default_rng(0)
        x = rng.standard_normal(512)
        np.testing.assert_allclose(h.matvec(x), dense3d @ x, atol=1e-6)

    def test_multicolumn(self, problem3d, dense3d):
        h = HODLRMatrix.from_problem(problem3d, TruncationRule(eps=1e-10))
        x = np.random.default_rng(1).standard_normal((512, 2))
        np.testing.assert_allclose(h.matvec(x), dense3d @ x, atol=1e-6)

    def test_wrong_length_rejected(self, problem3d):
        h = HODLRMatrix.from_problem(problem3d, TruncationRule(eps=1e-6))
        with pytest.raises(ConfigurationError):
            h.matvec(np.zeros(7))


class TestWeakAdmissibilityContrast:
    """Section II: weak admissibility suits 2D; 3D blocks carry high rank."""

    def test_3d_top_block_rank_exceeds_2d(self):
        rule = TruncationRule(eps=1e-6)
        h2 = HODLRMatrix.from_problem(st_2d_exp_problem(1024, 64, seed=3), rule)
        h3 = HODLRMatrix.from_problem(st_3d_exp_problem(1024, 64, seed=3), rule)
        top2 = h2.rank_profile()[0][1]
        top3 = h3.rank_profile()[0][1]
        assert top3 > 1.5 * top2

    def test_top_level_rank_grows_with_block_size_in_3d(self):
        """The 3D failure mode: bigger off-diagonal blocks, bigger ranks —
        the rank is not bounded as weak admissibility would need."""
        rule = TruncationRule(eps=1e-6)
        h = HODLRMatrix.from_problem(st_3d_exp_problem(2048, 64, seed=4), rule)
        profile = h.rank_profile()  # sorted by block size, descending
        big_rank = profile[0][1]
        small_ranks = [r for (sz, r, lvl) in profile if sz <= 128]
        assert big_rank > 2 * max(small_ranks)

    def test_memory_reporting(self, problem3d):
        h = HODLRMatrix.from_problem(problem3d, TruncationRule(eps=1e-6))
        dense_elems = 512 * 512
        assert 0 < h.memory_elements() < dense_elems
