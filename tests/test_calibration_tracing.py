"""Unit tests for machine calibration and Chrome-trace export."""

import json

import pytest

from repro.obs import write_chrome_trace
from repro.distribution import ProcessGrid, TwoDBlockCyclic
from repro.runtime import (
    MachineSpec,
    build_cholesky_graph,
    calibrate_machine,
    measure_dense_gflops,
    measure_lr_efficiency,
    simulate,
)


class TestCalibration:
    def test_dense_gflops_plausible(self):
        g = measure_dense_gflops(b=256, repeats=1)
        assert 0.5 < g < 1000.0  # any real machine lands here

    def test_lr_efficiency_below_one(self):
        frac = measure_lr_efficiency(b=256, repeats=1)
        assert 0.0 < frac < 1.0

    def test_calibrate_machine_builds_spec(self):
        m = calibrate_machine(nodes=3, cores_per_node=5, b=128, repeats=1)
        assert m.nodes == 3
        assert m.cores_per_node == 5
        assert m.rates.dense_gflops > 0

    def test_kwargs_forwarded(self):
        m = calibrate_machine(b=128, repeats=1, latency_s=9e-6)
        assert m.latency_s == 9e-6

    def test_calibrated_machine_simulates(self):
        m = calibrate_machine(nodes=2, cores_per_node=2, b=128, repeats=1)
        g = build_cholesky_graph(6, 2, 128, lambda i, j: 8)
        res = simulate(g, TwoDBlockCyclic(ProcessGrid.squarest(2)), m)
        assert res.makespan > 0


class TestChromeTrace:
    @pytest.fixture(scope="class")
    def traced(self):
        g = build_cholesky_graph(6, 2, 128, lambda i, j: 8)
        return g, simulate(
            g,
            TwoDBlockCyclic(ProcessGrid.squarest(2)),
            MachineSpec(nodes=2, cores_per_node=2),
            collect_trace=True,
        )

    def test_event_per_task(self, traced, tmp_path):
        g, res = traced
        p = write_chrome_trace(res, tmp_path / "t.json")
        doc = json.loads(p.read_text())
        assert len(doc["traceEvents"]) == g.n_tasks

    def test_event_fields(self, traced, tmp_path):
        _, res = traced
        doc = json.loads(write_chrome_trace(res, tmp_path / "t").read_text())
        ev = doc["traceEvents"][0]
        assert ev["ph"] == "X"
        assert ev["dur"] >= 0
        assert ev["pid"] in (0, 1)

    def test_metadata(self, traced, tmp_path):
        _, res = traced
        doc = json.loads(write_chrome_trace(res, tmp_path / "t").read_text())
        assert doc["otherData"]["nodes"] == 2

    def test_suffix_appended(self, traced, tmp_path):
        _, res = traced
        assert write_chrome_trace(res, tmp_path / "noext").suffix == ".json"

    def test_requires_trace(self, traced, tmp_path):
        g, _ = traced
        res = simulate(
            g,
            TwoDBlockCyclic(ProcessGrid.squarest(2)),
            MachineSpec(nodes=2, cores_per_node=2),
        )
        with pytest.raises(ValueError):
            write_chrome_trace(res, tmp_path / "t.json")
