"""Unit tests for the simulator's scheduler policies."""

import pytest

from repro.distribution import ProcessGrid, TwoDBlockCyclic
from repro.runtime import MachineSpec, build_cholesky_graph, simulate
from repro.utils import SchedulingError


@pytest.fixture(scope="module")
def setup():
    g = build_cholesky_graph(16, 3, 512, lambda i, j: max(4, 64 // (i - j)))
    m = MachineSpec(nodes=4, cores_per_node=4)
    d = TwoDBlockCyclic(ProcessGrid.squarest(4))
    return g, m, d


class TestSchedulerPolicies:
    @pytest.mark.parametrize("sched", ["priority", "fifo", "lifo"])
    def test_all_policies_complete(self, setup, sched):
        g, m, d = setup
        res = simulate(g, d, m, scheduler=sched)
        assert res.makespan > 0
        assert res.total_flops == pytest.approx(g.total_flops())

    def test_unknown_policy_rejected(self, setup):
        g, m, d = setup
        with pytest.raises(SchedulingError):
            simulate(g, d, m, scheduler="random")

    def test_policies_differ(self, setup):
        """The policies genuinely change execution order (and so panel
        release times) on a contended machine."""
        g, m, d = setup
        rp = simulate(g, d, m, scheduler="priority")
        rf = simulate(g, d, m, scheduler="fifo")
        assert rp.panel_done != rf.panel_done

    def test_priority_promotes_panels(self, setup):
        """The priority scheduler releases mid panels no later than FIFO
        (its design goal: promote the critical path / lookahead)."""
        g, m, d = setup
        rp = simulate(g, d, m, scheduler="priority")
        rf = simulate(g, d, m, scheduler="fifo")
        mid = len(rp.panel_done) // 2
        assert rp.panel_done[mid] <= rf.panel_done[mid] * 1.05

    def test_same_total_busy_time(self, setup):
        """Scheduling order never changes the amount of work done."""
        g, m, d = setup
        results = [
            simulate(g, d, m, scheduler=s) for s in ("priority", "fifo", "lifo")
        ]
        totals = [float(r.busy.sum()) for r in results]
        assert max(totals) == pytest.approx(min(totals))

    def test_deterministic_per_policy(self, setup):
        g, m, d = setup
        a = simulate(g, d, m, scheduler="lifo")
        b = simulate(g, d, m, scheduler="lifo")
        assert a.makespan == b.makespan
