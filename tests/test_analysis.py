"""Unit tests for the analysis subpackage (ranks, metrics, reports)."""

import numpy as np
import pytest

from repro.analysis import (
    RankModel,
    format_series,
    format_table,
    occupancy_summary,
    panel_release_gain,
    paper_rank_model,
    rank_ratios,
    rank_stats,
    render_rank_grid,
    speedup,
    strong_scaling_efficiency,
    weak_scaling_efficiency,
    write_csv,
)
from repro.utils import ConfigurationError


class TestRankStats:
    def test_ignores_negative(self):
        g = np.array([[-1, -1], [5, -1]])
        s = rank_stats(g)
        assert (s.minrank, s.maxrank, s.n_tiles) == (5, 5, 1)

    def test_empty(self):
        s = rank_stats(np.full((3, 3), -1))
        assert s.n_tiles == 0

    def test_ratios(self):
        g = np.array([[-1, -1], [50, -1]])
        rm, rd = rank_ratios(g, 100)
        assert rm == 0.5
        assert rd == 0.0

    def test_str(self):
        assert "maxrank" in str(rank_stats(np.array([[3]])))


class TestRenderRankGrid:
    def test_dense_marked_dot(self):
        out = render_rank_grid(np.array([[-1, -1], [7, -1]]))
        assert "." in out and "7" in out

    def test_large_grid_decimated(self):
        out = render_rank_grid(np.zeros((100, 100), dtype=int), max_dim=10)
        assert "every" in out


class TestRankModel:
    def test_decay_monotone(self):
        m = RankModel(tile_size=256, k1=100, alpha=0.8)
        ranks = [m.rank(d, 0) for d in range(1, 20)]
        assert all(a >= b for a, b in zip(ranks, ranks[1:]))

    def test_floor_respected(self):
        m = RankModel(tile_size=256, k1=100, alpha=2.0, kmin=6)
        assert m.rank(100, 0) == 6

    def test_cap_at_tile_size(self):
        m = RankModel(tile_size=32, k1=1000, alpha=0.1)
        assert m.rank(1, 0) == 32

    def test_diagonal_rejected(self):
        with pytest.raises(ConfigurationError):
            RankModel(tile_size=32, k1=10, alpha=1.0).rank(3, 3)

    def test_final_ranks_grow_near_diagonal(self):
        m = RankModel(tile_size=256, k1=50, alpha=0.8, growth=1.5)
        assert m.final(1, 0) > m.rank(1, 0)
        # Far away the growth washes out.
        assert m.final(40, 0) <= m.rank(40, 0) + 1

    def test_fit_recovers_parameters(self):
        true = RankModel(tile_size=128, k1=60.0, alpha=0.9, kmin=1)
        grid = true.to_rank_grid(24)
        fitted = RankModel.fit(grid, 128)
        assert fitted.k1 == pytest.approx(60.0, rel=0.15)
        assert fitted.alpha == pytest.approx(0.9, rel=0.15)

    def test_fit_needs_two_subdiagonals(self):
        with pytest.raises(ConfigurationError):
            RankModel.fit(np.full((2, 2), -1), 64)

    def test_rescaled(self):
        m = RankModel(tile_size=100, k1=50, alpha=1.0, kmin=10)
        m2 = m.rescaled(200)
        assert m2.k1 == 100.0
        assert m2.kmin == 20

    def test_callable_protocol(self):
        m = RankModel(tile_size=64, k1=10, alpha=1.0)
        assert m(3, 1) == m.rank(3, 1)


class TestPaperRankModel:
    def test_ratio_maxrank_decreases_with_looser_accuracy(self):
        """Fig. 13b: ratio_maxrank descends as accuracy loosens."""
        b = 1200
        r = [
            paper_rank_model(b, eps).rank(1, 0) / b
            for eps in (1e-9, 1e-7, 1e-5, 1e-3)
        ]
        assert all(a > c for a, c in zip(r, r[1:]))

    def test_rejects_bad_accuracy(self):
        with pytest.raises(ConfigurationError):
            paper_rank_model(64, 0.0)


class TestMetrics:
    def _sim_result(self, makespan=10.0, busy=(20.0, 30.0)):
        from repro.runtime.simulator import CommStats, SimResult

        return SimResult(
            makespan=makespan,
            busy=np.array(busy),
            comm=CommStats(),
            potrf_done=[1.0, 2.0],
            panel_done=[1.5, 2.5],
            total_flops=1e9,
            nodes=2,
            cores_per_node=4,
        )

    def test_occupancy_summary(self):
        s = occupancy_summary(self._sim_result())
        assert s.makespan == 10.0
        np.testing.assert_allclose(s.idle_per_process, [20.0, 10.0])
        assert 0 < s.mean_occupancy < 1
        assert s.imbalance == pytest.approx(30.0 / 25.0 - 1.0)

    def test_panel_release_gain(self):
        base = self._sim_result()
        better = self._sim_result()
        better.panel_done = [0.75, 1.25]
        gain = panel_release_gain(base, better)
        np.testing.assert_allclose(gain, [0.5, 0.5])

    def test_panel_release_shape_mismatch(self):
        base = self._sim_result()
        other = self._sim_result()
        other.panel_done = [1.0]
        with pytest.raises(ConfigurationError):
            panel_release_gain(base, other)

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        with pytest.raises(ConfigurationError):
            speedup(10.0, 0.0)

    def test_strong_scaling(self):
        eff = strong_scaling_efficiency({1: 100.0, 2: 50.0, 4: 50.0})
        assert eff[1] == 1.0
        assert eff[2] == 1.0
        assert eff[4] == 0.5

    def test_weak_scaling(self):
        eff = weak_scaling_efficiency({1: 10.0, 4: 20.0})
        assert eff[4] == 0.5

    def test_scaling_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            strong_scaling_efficiency({})


class TestReport:
    def test_format_table_aligned(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.500" in out

    def test_format_table_rejects_ragged(self):
        with pytest.raises(ConfigurationError):
            format_table(["a"], [[1, 2]])

    def test_format_series(self):
        out = format_series("x", ["y"], [(1, 2.0)])
        assert "x" in out and "y" in out

    def test_write_csv(self, tmp_path):
        p = write_csv(tmp_path / "sub" / "r.csv", ["a", "b"], [[1, 2]])
        assert p.read_text().startswith("a,b")
