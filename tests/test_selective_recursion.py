"""Tests for selective recursive expansion (Prev recursed POTRF only)."""

import pytest

from repro.linalg import KernelClass
from repro.runtime import build_cholesky_graph
from repro.runtime.task import TaskKind

RANK = lambda i, j: 12


class TestSelectiveExpansion:
    def test_potrf_only_expansion(self):
        g = build_cholesky_graph(
            6, 3, 64, RANK, recursive_split=2,
            recursive_kernels={KernelClass.POTRF_DENSE},
        )
        # POTRF joins keep original ids with zero flops; TRSM/SYRK/GEMM
        # band tasks stay whole (positive flops on the original id).
        assert g.tasks[(TaskKind.POTRF, 0)].flops == 0.0
        assert g.tasks[(TaskKind.TRSM, 1, 0)].flops > 0.0
        assert g.tasks[(TaskKind.SYRK, 1, 0)].flops > 0.0

    def test_task_count_ordering(self):
        kwargs = dict(recursive_split=2)
        g0 = build_cholesky_graph(6, 3, 64, RANK)
        gp = build_cholesky_graph(
            6, 3, 64, RANK, recursive_kernels={KernelClass.POTRF_DENSE}, **kwargs
        )
        ga = build_cholesky_graph(6, 3, 64, RANK, **kwargs)
        assert g0.n_tasks < gp.n_tasks < ga.n_tasks

    def test_flops_conserved_selective(self):
        # Even split: sub-tile costs are exact.
        g0 = build_cholesky_graph(6, 3, 64, RANK)
        gp = build_cholesky_graph(
            6, 3, 64, RANK, recursive_split=2,
            recursive_kernels={KernelClass.POTRF_DENSE, KernelClass.TRSM_DENSE},
        )
        assert gp.total_flops() == pytest.approx(g0.total_flops())
        gp.validate()

    def test_flops_near_conserved_uneven_split(self):
        """Uneven splits use max()-based sub-tile costs: a small documented
        overcount, bounded here at 2%."""
        g0 = build_cholesky_graph(6, 3, 64, RANK)
        gp = build_cholesky_graph(
            6, 3, 64, RANK, recursive_split=3,
            recursive_kernels={KernelClass.POTRF_DENSE, KernelClass.TRSM_DENSE},
        )
        assert gp.total_flops() == pytest.approx(g0.total_flops(), rel=0.02)

    def test_critical_path_monotone_in_expansion_scope(self):
        """Expanding more kernel classes never lengthens the critical path."""
        g0 = build_cholesky_graph(8, 4, 64, RANK)
        gp = build_cholesky_graph(
            8, 4, 64, RANK, recursive_split=2,
            recursive_kernels={KernelClass.POTRF_DENSE},
        )
        ga = build_cholesky_graph(8, 4, 64, RANK, recursive_split=2)
        assert (
            ga.critical_path_flops()
            <= gp.critical_path_flops() + 1e-6
        )
        assert gp.critical_path_flops() <= g0.critical_path_flops() + 1e-6

    def test_empty_kernel_set_expands_nothing(self):
        g0 = build_cholesky_graph(5, 2, 64, RANK)
        ge = build_cholesky_graph(
            5, 2, 64, RANK, recursive_split=2, recursive_kernels=set()
        )
        assert ge.n_tasks == g0.n_tasks
        assert ge.critical_path_flops() == pytest.approx(g0.critical_path_flops())
