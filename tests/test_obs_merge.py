"""Cross-rank trace aggregation: shards, clock alignment, merged trace.

A 2-rank distributed run with ``shard_dir`` set must leave one
observation shard per rank (spans + clock handshake + comm log +
latency sketch) and a merged Chrome trace that conserves spans, keeps
one lane group per rank, stays monotone after clock alignment, and
realizes the wire messages as flow (comm) edges.
"""

import json

import pytest

from repro.matrix import BandTLRMatrix
from repro.obs import LogHistogram, MergeReport, load_shards, merge_shards
from repro.runtime import build_cholesky_graph, execute_graph_distributed


def _graph_for(matrix, band):
    grid = matrix.rank_grid()
    return build_cholesky_graph(
        matrix.ntiles, band, matrix.desc.tile_size,
        lambda i, j: int(max(grid[i, j], 1)),
    )


@pytest.fixture(scope="module")
def sharded_run(tmp_path_factory):
    """One 2-rank inline run with shards, reused by every test here."""
    import numpy as np

    from repro import TruncationRule, st_3d_exp_problem

    shard_dir = tmp_path_factory.mktemp("shards")
    problem = st_3d_exp_problem(180, 30, seed=3)
    matrix = BandTLRMatrix.from_problem(
        problem, TruncationRule(eps=1e-8), band_size=1
    )
    graph = _graph_for(matrix, 1)
    report = execute_graph_distributed(
        graph, matrix, n_ranks=2, shard_dir=shard_dir, _inline=True
    )
    # the factor stays correct with sharding on
    l = matrix.to_dense(lower_only=True)
    a = problem.dense()
    assert float(np.linalg.norm(l @ l.T - a) / np.linalg.norm(a)) < 1e-6
    return shard_dir, graph, report


class TestShards:
    def test_one_shard_per_rank(self, sharded_run):
        shard_dir, _, _ = sharded_run
        names = sorted(p.name for p in shard_dir.glob("shard-rank*.json"))
        assert names == ["shard-rank0.json", "shard-rank1.json"]

    def test_shard_contents(self, sharded_run):
        shard_dir, graph, _ = sharded_run
        shards = load_shards(shard_dir)
        assert [s["rank"] for s in shards] == [0, 1]
        total = sum(len(s["spans"]) for s in shards)
        assert total == graph.n_tasks
        for s in shards:
            assert {"offset_s", "rtt_s"} <= set(s["clock"])
            assert s["clock"]["rtt_s"] >= 0.0
            for span in s["spans"]:
                assert span["end"] >= span["start"] >= 0.0
                assert {"name", "kind", "kernel", "flops"} <= set(span)

    def test_shard_sketch_counts_tasks(self, sharded_run):
        shard_dir, graph, _ = sharded_run
        shards = load_shards(shard_dir)
        merged = LogHistogram()
        for s in shards:
            merged.merge(LogHistogram.from_dict(s["sketch"]))
        assert merged.count == graph.n_tasks

    def test_wire_traffic_logged(self, sharded_run):
        shard_dir, _, report = sharded_run
        shards = load_shards(shard_dir)
        sends = sum(len(s["comm"]["sends"]) for s in shards)
        recvs = sum(len(s["comm"]["recvs"]) for s in shards)
        assert sends == report.wire_messages
        assert recvs == report.wire_messages


class TestMerge:
    def test_span_conservation(self, sharded_run):
        shard_dir, graph, _ = sharded_run
        m = merge_shards(shard_dir)
        assert isinstance(m, MergeReport)
        assert m.conserved
        assert m.merged_spans == graph.n_tasks
        assert m.shard_spans == {
            r: len(s["spans"])
            for r, s in zip((0, 1), load_shards(shard_dir))
        }

    def test_auto_merge_attached_to_report(self, sharded_run):
        _, graph, report = sharded_run
        assert report.shard_merge is not None
        assert report.shard_merge.conserved
        assert report.shard_merge.merged_spans == graph.n_tasks

    def test_per_rank_lanes_and_metadata(self, sharded_run):
        shard_dir, _, _ = sharded_run
        doc = json.loads((shard_dir / "trace_merged.json").read_text())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in spans} == {0, 1}
        names = [
            e for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert {m["args"]["name"] for m in names} == {"rank 0", "rank 1"}

    def test_timestamps_monotone_and_aligned(self, sharded_run):
        shard_dir, _, _ = sharded_run
        doc = json.loads((shard_dir / "trace_merged.json").read_text())
        ts = [e["ts"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert ts == sorted(ts)
        assert all(t >= 0.0 for t in ts)
        # within one lane spans must not overlap after alignment
        by_lane = {}
        for e in doc["traceEvents"]:
            if e["ph"] == "X":
                by_lane.setdefault((e["pid"], e["tid"]), []).append(
                    (e["ts"], e["ts"] + e["dur"])
                )
        for intervals in by_lane.values():
            intervals.sort()
            for (s0, e0), (s1, _) in zip(intervals, intervals[1:]):
                assert s1 >= e0 - 1e-6

    def test_comm_edges_realized(self, sharded_run):
        shard_dir, _, report = sharded_run
        m = merge_shards(shard_dir)
        assert m.comm_edges == report.wire_messages
        assert m.comm_unmatched == 0
        doc = json.loads((shard_dir / "trace_merged.json").read_text())
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        assert len(starts) == len(finishes) == m.comm_edges
        by_id = {e["id"]: e for e in starts}
        for f in finishes:
            s = by_id[f["id"]]
            assert s["pid"] != f["pid"]  # crosses ranks
            assert f["ts"] >= s["ts"] - 1e3  # recv not before send (1ms slack)

    def test_clock_offsets_reported(self, sharded_run):
        shard_dir, _, _ = sharded_run
        m = merge_shards(shard_dir)
        assert set(m.offsets_s) == {0, 1}
        assert set(m.rtts_s) == {0, 1}
        assert all(rtt >= 0.0 for rtt in m.rtts_s.values())

    def test_summary_and_percentiles(self, sharded_run):
        shard_dir, _, _ = sharded_run
        m = merge_shards(shard_dir)
        s = m.summary()
        assert s["conserved"] is True
        assert s["n_shards"] == 2
        assert m.makespan_s > 0
        assert 0 < m.task_percentiles["p50"] <= m.task_percentiles["p99"]

    def test_custom_out_path(self, sharded_run, tmp_path):
        shard_dir, _, _ = sharded_run
        m = merge_shards(shard_dir, out=tmp_path / "noext")
        assert m.out_path.suffix == ".json"
        assert m.out_path.exists()


class TestMergeValidation:
    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no shard"):
            merge_shards(tmp_path)

    def test_corrupt_shard_raises(self, tmp_path):
        (tmp_path / "shard-rank0.json").write_text("{broken")
        with pytest.raises(ValueError):
            load_shards(tmp_path)

    def test_rank_mismatch_raises(self, tmp_path):
        (tmp_path / "shard-rank0.json").write_text(
            json.dumps({"rank": 1, "spans": [], "clock": {}})
        )
        with pytest.raises(ValueError, match="rank"):
            load_shards(tmp_path)


class TestCli:
    def test_obs_merge_cli_ok(self, sharded_run, capsys):
        from repro.__main__ import main

        shard_dir, _, _ = sharded_run
        assert main(["obs-merge", str(shard_dir)]) == 0
        out = capsys.readouterr().out
        assert "span conservation: ok" in out
        assert "clock offsets" in out

    def test_obs_merge_cli_bad_input(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["obs-merge", str(tmp_path)]) == 2
        assert "error" in capsys.readouterr().err
