"""Unit tests for the memory-feasibility analysis."""

import pytest

from repro.analysis import (
    RankModel,
    footprint_per_node_gb,
    max_feasible_matrix_size,
    paper_rank_model,
)
from repro.runtime import MachineSpec
from repro.utils import ConfigurationError


@pytest.fixture(scope="module")
def model():
    return RankModel(tile_size=256, k1=80, alpha=0.9, kmin=4)


class TestFootprint:
    def test_monotone_in_ntiles(self, model):
        m = MachineSpec(nodes=4)
        f = [footprint_per_node_gb(nt, model, m) for nt in (4, 8, 16, 32)]
        assert all(a < b for a, b in zip(f, f[1:]))

    def test_static_exceeds_dynamic(self, model):
        m = MachineSpec(nodes=4)
        dyn = footprint_per_node_gb(20, model, m)
        stat = footprint_per_node_gb(20, model, m, static_maxrank=128)
        assert stat > dyn

    def test_more_nodes_less_per_node(self, model):
        f4 = footprint_per_node_gb(16, model, MachineSpec(nodes=4))
        f16 = footprint_per_node_gb(16, model, MachineSpec(nodes=16))
        assert f16 == pytest.approx(f4 / 4)

    def test_growth_increases_footprint(self, model):
        m = MachineSpec(nodes=4)
        g = footprint_per_node_gb(16, model, m, growth=True)
        ng = footprint_per_node_gb(16, model, m, growth=False)
        assert g >= ng

    def test_wider_band_more_memory(self, model):
        m = MachineSpec(nodes=4)
        b1 = footprint_per_node_gb(16, model, m, band_size=1)
        b4 = footprint_per_node_gb(16, model, m, band_size=4)
        assert b4 > b1

    def test_matches_bruteforce(self, model):
        """O(NT) sweep equals the per-tile double loop."""
        m = MachineSpec(nodes=3)
        nt, b = 10, model.tile_size
        brute = 0
        for i in range(nt):
            for j in range(i + 1):
                if i - j < 2:
                    brute += b * b
                else:
                    brute += 2 * b * model.final(i, j)
        brute_gb = brute * 8 / m.nodes / 2**30
        assert footprint_per_node_gb(nt, model, m, band_size=2) == pytest.approx(
            brute_gb
        )


class TestMaxFeasible:
    def test_dynamic_beats_static(self, model):
        m = MachineSpec(nodes=4, memory_per_node_GB=1.0)
        dyn = max_feasible_matrix_size(model, m)
        stat = max_feasible_matrix_size(model, m, static_maxrank=128)
        assert dyn.max_matrix_size > stat.max_matrix_size

    def test_footprint_within_budget(self, model):
        m = MachineSpec(nodes=4, memory_per_node_GB=1.0)
        rep = max_feasible_matrix_size(model, m, capacity_fraction=0.5)
        assert rep.footprint_gb <= 0.5

    def test_one_more_tile_does_not_fit(self, model):
        m = MachineSpec(nodes=2, memory_per_node_GB=0.5)
        rep = max_feasible_matrix_size(model, m, capacity_fraction=0.8)
        if 0 < rep.max_ntiles < 4096:
            over = footprint_per_node_gb(rep.max_ntiles + 1, model, m)
            assert over > 0.8 * 0.5

    def test_zero_when_nothing_fits(self, model):
        m = MachineSpec(nodes=1, memory_per_node_GB=1e-6)
        rep = max_feasible_matrix_size(model, m)
        assert rep.max_ntiles == 0

    def test_rejects_bad_fraction(self, model):
        with pytest.raises(ConfigurationError):
            max_feasible_matrix_size(model, MachineSpec(), capacity_fraction=0.0)

    def test_paper_scale_anchor(self):
        """512 nodes x 128 GB at b = 2400: Prev's ceiling lands near the
        paper's 3.24M, New's far beyond it (Section VIII-E/F)."""
        model = paper_rank_model(2400, accuracy=1e-8)
        machine = MachineSpec(nodes=512)
        prev = max_feasible_matrix_size(
            model, machine, band_size=1, static_maxrank=1200
        )
        new = max_feasible_matrix_size(model, machine, band_size=3)
        assert 2_000_000 < prev.max_matrix_size < 6_000_000
        assert new.max_matrix_size > 2 * prev.max_matrix_size
