"""Integration tests: the full pipeline across module boundaries.

These exercise the same paths the benchmarks use — generate → compress →
auto-tune → (executor | simulator) → solve — and check cross-module
consistency rather than per-unit behaviour.
"""

import numpy as np
import pytest

from repro import TLRSolver, TruncationRule, st_3d_exp_problem
from repro.analysis import RankModel, occupancy_summary

pytestmark = pytest.mark.slow
from repro.core import autotune_matrix, solve_spd, tlr_cholesky
from repro.distribution import BandDistribution, ProcessGrid
from repro.matrix import BandTLRMatrix
from repro.runtime import (
    MachineSpec,
    build_cholesky_graph,
    execute_graph,
    simulate,
)


class TestFullPipeline:
    def test_autotuned_factorize_solve(self):
        """End-to-end with auto-tuning at a loose, rank-heterogeneous eps."""
        prob = st_3d_exp_problem(2000, 125, seed=11, nugget=1e-3)
        rule = TruncationRule(eps=1e-5)
        m1 = BandTLRMatrix.from_problem(prob, rule, band_size=1)
        m, decision = autotune_matrix(m1, prob)
        m = m.copy()
        tlr_cholesky(m)

        a = prob.dense()
        rng = np.random.default_rng(0)
        x_true = rng.standard_normal(2000)
        x = solve_spd(m, a @ x_true)
        err = np.linalg.norm(x - x_true) / np.linalg.norm(x_true)
        assert err < 1e-2  # loose accuracy, loose bound
        assert decision.band_size >= 1

    def test_solver_api_vs_manual_pipeline(self):
        """TLRSolver produces the same factor as the manual steps."""
        prob = st_3d_exp_problem(1000, 125, seed=4)
        solver = TLRSolver.from_problem(prob, accuracy=1e-8, band_size=2)
        solver.factorize()

        manual = BandTLRMatrix.from_problem(
            prob, TruncationRule(eps=1e-8), band_size=2
        )
        tlr_cholesky(manual)
        np.testing.assert_allclose(
            solver.matrix.to_dense(lower_only=True),
            manual.to_dense(lower_only=True),
            atol=1e-10,
        )

    def test_executor_graph_matches_solver(self):
        """The runtime executor path solves systems as well as the loop."""
        prob = st_3d_exp_problem(1000, 125, seed=4)
        rule = TruncationRule(eps=1e-8)
        m = BandTLRMatrix.from_problem(prob, rule, band_size=2)
        grid = m.rank_grid()
        g = build_cholesky_graph(
            m.ntiles, 2, 125, lambda i, j: int(max(grid[i, j], 1))
        )
        execute_graph(g, m)

        a = prob.dense()
        rng = np.random.default_rng(1)
        x_true = rng.standard_normal(1000)
        x = solve_spd(m, a @ x_true)
        assert np.linalg.norm(x - x_true) / np.linalg.norm(x_true) < 1e-6


class TestSimulatorExecutorConsistency:
    """Simulator and executor consume the same graph; their structural
    views must agree."""

    def test_flop_totals_agree(self):
        prob = st_3d_exp_problem(1000, 125, seed=4)
        rule = TruncationRule(eps=1e-8)
        m = BandTLRMatrix.from_problem(prob, rule, band_size=2)
        grid = m.rank_grid()
        g = build_cholesky_graph(
            m.ntiles, 2, 125, lambda i, j: int(max(grid[i, j], 1))
        )

        machine = MachineSpec(nodes=4, cores_per_node=4)
        dist = BandDistribution(ProcessGrid.squarest(4), band_size=2)
        res = simulate(g, dist, machine)
        assert res.total_flops == pytest.approx(g.total_flops())

        rep = execute_graph(g, m)
        assert rep.tasks_executed == g.n_tasks

    def test_makespan_bounded_by_serial_and_critical_path(self):
        model = RankModel(tile_size=256, k1=64, alpha=0.9)
        g = build_cholesky_graph(10, 2, 256, model)
        machine = MachineSpec(nodes=2, cores_per_node=4)
        dist = BandDistribution(ProcessGrid.squarest(2), band_size=2)
        res = simulate(g, dist, machine)
        # Makespan can never beat the per-core serial time divided by the
        # core count, nor undercut zero communication critical path / the
        # fastest possible rate.
        serial = sum(
            machine.rates.seconds(t.kernel, t.flops, 256, 32)
            for t in g.tasks.values()
        )
        assert res.makespan <= serial + 1e-9
        assert res.makespan >= serial / machine.total_cores - 1e-9

    def test_occupancy_summary_consistent(self):
        model = RankModel(tile_size=256, k1=64, alpha=0.9)
        g = build_cholesky_graph(12, 2, 256, model)
        machine = MachineSpec(nodes=4, cores_per_node=2)
        dist = BandDistribution(ProcessGrid.squarest(4), band_size=2)
        res = simulate(g, dist, machine)
        s = occupancy_summary(res)
        np.testing.assert_allclose(
            s.busy_per_process + s.idle_per_process,
            machine.cores_per_node * res.makespan,
            rtol=1e-9,
        )


class TestNumericalRegimes:
    @pytest.mark.parametrize("eps,bound", [(1e-10, 1e-8), (1e-6, 1e-4), (1e-3, 0.2)])
    def test_error_scales_with_accuracy(self, eps, bound):
        prob = st_3d_exp_problem(729, 81, seed=6, nugget=1e-2)
        m = BandTLRMatrix.from_problem(prob, TruncationRule(eps=eps), band_size=1)
        tlr_cholesky(m)
        a = prob.dense()
        l = m.to_dense(lower_only=True)
        err = np.linalg.norm(l @ l.T - a) / np.linalg.norm(a)
        assert err < bound

    def test_wider_band_never_less_accurate(self):
        prob = st_3d_exp_problem(729, 81, seed=6, nugget=1e-2)
        errs = []
        a = prob.dense()
        for band in (1, 3, 9):
            m = BandTLRMatrix.from_problem(
                prob, TruncationRule(eps=1e-4), band_size=band
            )
            tlr_cholesky(m)
            l = m.to_dense(lower_only=True)
            errs.append(np.linalg.norm(l @ l.T - a) / np.linalg.norm(a))
        assert errs[2] <= errs[0] * 1.01  # fully dense is (near-)exact
