"""Unit tests for dataflow classification (Section VII-A) and DOT export."""

import pytest

from repro.distribution import BandDistribution, ProcessGrid, TwoDBlockCyclic
from repro.runtime import build_cholesky_graph
from repro.runtime.dataflow import classify_dataflow, to_dot
from repro.runtime.task import TaskKind

RANK = lambda i, j: 8


@pytest.fixture(scope="module")
def graph():
    return build_cholesky_graph(8, 2, 64, RANK)


class TestClassification:
    def test_chain_edges_always_local(self, graph):
        """Section VII-A: SYRK→SYRK, SYRK→POTRF, GEMM→GEMM, GEMM→TRSM
        connect tasks writing the same tile, hence the same process."""
        for nprocs in (1, 4):
            dist = TwoDBlockCyclic(ProcessGrid.squarest(nprocs))
            bd = classify_dataflow(graph, dist)
            for pair in [
                (TaskKind.SYRK, TaskKind.SYRK),
                (TaskKind.SYRK, TaskKind.POTRF),
                (TaskKind.GEMM, TaskKind.GEMM),
                (TaskKind.GEMM, TaskKind.TRSM),
            ]:
                assert bd.count(*pair, "remote") == 0, pair

    def test_remote_kinds_match_paper(self, graph):
        """Only POTRF→TRSM, TRSM→SYRK and TRSM→GEMM can post messages."""
        dist = TwoDBlockCyclic(ProcessGrid.squarest(4))
        bd = classify_dataflow(graph, dist)
        remote_pairs = {
            (s, d) for (s, d, loc) in bd.edges if loc == "remote"
        }
        assert remote_pairs <= {
            (TaskKind.POTRF, TaskKind.TRSM),
            (TaskKind.TRSM, TaskKind.SYRK),
            (TaskKind.TRSM, TaskKind.GEMM),
        }
        assert remote_pairs  # some communication does happen

    def test_single_process_all_local(self, graph):
        bd = classify_dataflow(graph, TwoDBlockCyclic(ProcessGrid(1, 1)))
        assert bd.remote_total == 0
        assert bd.local_total > 0

    def test_totals_cover_every_edge(self, graph):
        dist = BandDistribution(ProcessGrid.squarest(4), band_size=2)
        bd = classify_dataflow(graph, dist)
        n_edges = sum(len(t.deps) for t in graph.tasks.values())
        assert bd.local_total + bd.remote_total == n_edges

    def test_remote_bytes_positive(self, graph):
        dist = TwoDBlockCyclic(ProcessGrid.squarest(4))
        bd = classify_dataflow(graph, dist)
        assert sum(bd.bytes_remote.values()) > 0


class TestDotExport:
    def test_contains_all_tasks(self):
        g = build_cholesky_graph(3, 1, 32, RANK)
        dot = to_dot(g)
        assert dot.count("fillcolor") == g.n_tasks
        assert dot.startswith("digraph")

    def test_writes_file(self, tmp_path):
        g = build_cholesky_graph(3, 1, 32, RANK)
        p = tmp_path / "g.dot"
        to_dot(g, p)
        assert p.read_text().startswith("digraph")

    def test_rejects_large_graphs(self):
        g = build_cholesky_graph(16, 1, 32, RANK)
        with pytest.raises(ValueError, match="raise max_tasks"):
            to_dot(g)
