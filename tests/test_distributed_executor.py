"""Unit tests: the multi-process distributed executor places tiles per
the hybrid band distribution, realizes exactly the LOCAL/REMOTE dataflow
the analytical classifier and the simulator predict, computes the factor
bitwise-identically to the sequential/thread executors at any rank
count, and survives rank loss via checkpoint/restart — all behind the
unified Executor protocol."""

import dataclasses

import numpy as np
import pytest

from repro.core import TLRSolver, tlr_cholesky
from repro.distribution import BandDistribution, ProcessGrid
from repro.matrix import BandTLRMatrix
from repro.runtime import (
    SHAHEEN_II_LIKE,
    ExecutorRun,
    ProcessExecutor,
    SequentialExecutor,
    SimExecutor,
    ThreadExecutor,
    binomial_children,
    build_cholesky_graph,
    classify_dataflow,
    execute_graph,
    execute_graph_distributed,
    execute_graph_parallel,
    get_executor,
    placement_of,
    simulate,
)
from repro.utils import ConfigurationError, RuntimeSystemError


def _rank_fn_for(matrix):
    grid = matrix.rank_grid()

    def rank(i, j):
        return int(max(grid[i, j], 1))

    return rank


def _graph_for(matrix, band):
    return build_cholesky_graph(
        matrix.ntiles, band, matrix.desc.tile_size, _rank_fn_for(matrix)
    )


def _dist_for(graph, ranks):
    return BandDistribution(
        ProcessGrid.squarest(ranks), band_size=graph.band_size
    )


@pytest.fixture()
def band2(small_problem, rule8):
    return BandTLRMatrix.from_problem(small_problem, rule8, band_size=2)


@pytest.fixture()
def band2_factor(small_problem, rule8):
    """Reference factor from the sequential graph executor."""
    m = BandTLRMatrix.from_problem(small_problem, rule8, band_size=2)
    execute_graph(_graph_for(m, 2), m)
    return m.to_dense(lower_only=True)


class TestPlacement:
    def test_placement_is_owner_computes(self, band2):
        g = _graph_for(band2, 2)
        dist = _dist_for(g, 3)
        placement = placement_of(g, dist)
        assert set(placement) == set(g.tasks)
        for tid, task in g.tasks.items():
            assert placement[tid] == dist.owner(*task.out_tile)

    def test_report_placement_matches_default_distribution(self, band2):
        g = _graph_for(band2, 2)
        rep = execute_graph_distributed(g, band2, n_ranks=2, _inline=True)
        assert rep.placement == placement_of(g, _dist_for(g, 2))

    @pytest.mark.parametrize("n", [1, 2, 3, 7, 16])
    def test_binomial_children_cover_dests_once(self, n):
        dests = list(range(10, 10 + n))
        seen = []

        def walk(subtree):
            for child, rest in binomial_children(subtree):
                seen.append(child)
                walk(rest)

        walk(dests)
        assert sorted(seen) == sorted(dests)
        # The root itself sends O(log n) messages, not n.
        root_sends = len(binomial_children(dests))
        assert root_sends <= int(np.ceil(np.log2(n))) + 1


class TestDataflowReconciliation:
    """Realized communication must equal what the analytical classifier
    and the DES predict — the executor is the ground truth that validates
    both models."""

    @pytest.mark.parametrize("ranks", [2, 3])
    def test_realized_dataflow_matches_classifier(self, band2, ranks):
        g = _graph_for(band2, 2)
        rep = execute_graph_distributed(
            g, band2, n_ranks=ranks, _inline=True
        )
        expected = classify_dataflow(g, _dist_for(g, ranks))
        assert rep.dataflow.edges == expected.edges
        assert rep.dataflow.bytes_remote == expected.bytes_remote
        assert rep.dataflow.remote_total == expected.remote_total

    def test_realized_comm_matches_simulator(self, band2):
        g = _graph_for(band2, 2)
        dist = _dist_for(g, 3)
        rep = execute_graph_distributed(
            g, band2, distribution=dist, _inline=True
        )
        machine = dataclasses.replace(
            SHAHEEN_II_LIKE, nodes=3, cores_per_node=1
        )
        sim = simulate(g, dist, machine)
        assert rep.comm.local_edges == sim.comm.local_edges
        assert rep.comm.remote_edges == sim.comm.remote_edges
        assert rep.comm.messages == sim.comm.messages
        assert rep.comm.bytes_sent == sim.comm.bytes_sent
        assert rep.comm.broadcasts == sim.comm.broadcasts

    def test_wire_traffic_bounded_by_modelled(self, band2):
        g = _graph_for(band2, 2)
        rep = execute_graph_distributed(g, band2, n_ranks=3, _inline=True)
        # Binomial forwarding can add hops but never exceeds one message
        # per (edge, dest); the modelled count is the per-dest dedup.
        assert rep.wire_messages >= rep.comm.messages
        assert rep.wire_bytes > 0


class TestDeterminism:
    def test_processes_bitwise_vs_sequential(self, band2, band2_factor):
        g = _graph_for(band2, 2)
        rep = execute_graph_distributed(g, band2, n_ranks=2)
        assert rep.tasks_executed == g.n_tasks
        assert np.array_equal(
            band2.to_dense(lower_only=True), band2_factor
        )

    def test_rank_counts_agree_bitwise(self, small_problem, rule8,
                                       band2_factor):
        for ranks in (3, 4):
            m = BandTLRMatrix.from_problem(
                small_problem, rule8, band_size=2
            )
            execute_graph_distributed(
                _graph_for(m, 2), m, n_ranks=ranks, _inline=True
            )
            assert np.array_equal(
                m.to_dense(lower_only=True), band2_factor
            ), f"rank count {ranks} diverged"

    def test_inline_mode_bitwise(self, band2, band2_factor):
        g = _graph_for(band2, 2)
        rep = execute_graph_distributed(g, band2, n_ranks=2, _inline=True)
        assert rep.tasks_executed == g.n_tasks
        assert np.array_equal(
            band2.to_dense(lower_only=True), band2_factor
        )

    def test_flops_and_stats_match_threads(self, small_problem, rule8):
        a = BandTLRMatrix.from_problem(small_problem, rule8, band_size=2)
        b = a.copy()
        g = _graph_for(a, 2)
        rep_d = execute_graph_distributed(g, a, n_ranks=2, _inline=True)
        rep_t = execute_graph_parallel(g, b, n_workers=2)
        assert rep_d.counter.total == pytest.approx(rep_t.counter.total)
        assert rep_d.max_rank_seen == rep_t.max_rank_seen
        assert rep_d.rank_growth_events == rep_t.rank_growth_events

    def test_trace_covers_every_task_once(self, band2):
        g = _graph_for(band2, 2)
        rep = execute_graph_distributed(
            g, band2, n_ranks=2, _inline=True, collect_trace=True
        )
        executed = [rec[0] for rec in rep.trace]
        assert len(executed) == g.n_tasks
        assert set(executed) == set(g.tasks)
        ranks = {rec[1] for rec in rep.trace}
        assert ranks == set(range(2))


class TestResilience:
    def test_killed_rank_restarts_and_recovers(self, band2, band2_factor,
                                               tmp_path):
        g = _graph_for(band2, 2)
        rep = execute_graph_distributed(
            g, band2, n_ranks=2,
            checkpoint=str(tmp_path / "ckpt"),
            _chaos_kill=(1, 8),
        )
        assert rep.rank_restarts >= 1
        assert rep.resilience is not None
        assert rep.resilience.recoveries >= 1
        assert np.array_equal(
            band2.to_dense(lower_only=True), band2_factor
        )

    def test_exhausted_restarts_then_manual_resume(self, small_problem,
                                                   rule8, band2_factor,
                                                   tmp_path):
        ckpt = str(tmp_path / "ckpt")
        m = BandTLRMatrix.from_problem(small_problem, rule8, band_size=2)
        g = _graph_for(m, 2)
        with pytest.raises(RuntimeSystemError):
            execute_graph_distributed(
                g, m, n_ranks=2, checkpoint=ckpt,
                max_restarts=0, _chaos_kill=(0, 50),
            )
        m2 = BandTLRMatrix.from_problem(small_problem, rule8, band_size=2)
        rep = execute_graph_distributed(
            g, m2, n_ranks=2, checkpoint=ckpt, resume=True
        )
        assert rep.tasks_resumed > 0
        assert rep.tasks_executed == g.n_tasks - rep.tasks_resumed
        assert np.array_equal(
            m2.to_dense(lower_only=True), band2_factor
        )

    def test_checkpoint_interchange_with_sequential(self, small_problem,
                                                    rule8, band2_factor,
                                                    tmp_path):
        """A checkpoint written under the process executor restores under
        the sequential executor — the archive format is backend-neutral."""
        ckpt = str(tmp_path / "ckpt")
        m = BandTLRMatrix.from_problem(small_problem, rule8, band_size=2)
        g = _graph_for(m, 2)
        with pytest.raises(RuntimeSystemError):
            execute_graph_distributed(
                g, m, n_ranks=2, checkpoint=ckpt,
                max_restarts=0, _chaos_kill=(0, 50),
            )
        m2 = BandTLRMatrix.from_problem(small_problem, rule8, band_size=2)
        rep = execute_graph(g, m2, checkpoint=ckpt, resume=True)
        assert rep.tasks_resumed > 0
        assert np.array_equal(
            m2.to_dense(lower_only=True), band2_factor
        )


class TestExecutorProtocol:
    def test_get_executor_resolves_names(self):
        assert isinstance(get_executor("sequential"), SequentialExecutor)
        assert isinstance(get_executor("threads"), ThreadExecutor)
        assert isinstance(get_executor("processes"), ProcessExecutor)
        assert isinstance(get_executor("sim"), SimExecutor)

    def test_get_executor_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            get_executor("mpi")
        with pytest.raises(ConfigurationError):
            get_executor(None)

    def test_get_executor_instance_passthrough(self):
        ex = ProcessExecutor(n_ranks=3)
        assert get_executor(ex) is ex
        with pytest.raises(ConfigurationError):
            get_executor(ex, n_ranks=4)

    def test_run_delegates_to_report(self, band2):
        g = _graph_for(band2, 2)
        run = ThreadExecutor(n_workers=2).execute(g, band2)
        assert isinstance(run, ExecutorRun)
        assert run.executor == "threads"
        assert not run.predicted
        assert run.tasks_executed == g.n_tasks  # delegated attribute
        assert run.makespan == run.report.makespan

    def test_same_factor_across_all_numerical_backends(
        self, small_problem, rule8, band2_factor
    ):
        for ex in (SequentialExecutor(), ThreadExecutor(n_workers=3),
                   ProcessExecutor(n_ranks=2)):
            m = BandTLRMatrix.from_problem(
                small_problem, rule8, band_size=2
            )
            run = ex.execute(_graph_for(m, 2), m)
            assert run.executor == ex.name
            assert np.array_equal(
                m.to_dense(lower_only=True), band2_factor
            ), f"{ex.name} diverged"

    def test_sim_executor_predicts_without_touching_matrix(self, band2):
        g = _graph_for(band2, 2)
        before = band2.to_dense(lower_only=True)
        run = SimExecutor(n_ranks=2).execute(g, band2, collect_trace=True)
        assert run.predicted
        assert run.executor == "sim"
        assert run.report.makespan > 0
        assert run.report.comm.remote_edges > 0
        assert np.array_equal(band2.to_dense(lower_only=True), before)

    def test_sim_executor_rejects_resilience(self, band2):
        g = _graph_for(band2, 2)
        with pytest.raises(ConfigurationError):
            SimExecutor(n_ranks=2).execute(g, band2, faults="nan:*:0.5")
        with pytest.raises(ConfigurationError):
            SimExecutor(n_ranks=2).execute(g, band2, checkpoint="/tmp/x")

    def test_sim_executor_rejects_machine_rank_mismatch(self, band2):
        g = _graph_for(band2, 2)
        machine = dataclasses.replace(
            SHAHEEN_II_LIKE, nodes=4, cores_per_node=1
        )
        with pytest.raises(ConfigurationError):
            SimExecutor(n_ranks=2, machine=machine).execute(g, band2)


class TestFactorizeWiring:
    def test_tlr_cholesky_executor_processes(self, small_problem, rule8):
        a = BandTLRMatrix.from_problem(small_problem, rule8, band_size=2)
        b = a.copy()
        rep = tlr_cholesky(a, executor="processes", n_ranks=2)
        tlr_cholesky(b)
        assert rep.executor == "processes"
        assert rep.comm is not None
        assert rep.comm.remote_edges > 0
        assert np.array_equal(
            a.to_dense(lower_only=True), b.to_dense(lower_only=True)
        )

    def test_tlr_cholesky_executor_threads_via_n_ranks(self, small_problem,
                                                       rule8):
        m = BandTLRMatrix.from_problem(small_problem, rule8, band_size=2)
        rep = tlr_cholesky(m, executor="threads", n_ranks=3)
        assert rep.executor == "threads"
        assert rep.comm is None

    def test_solver_passthrough(self, small_problem):
        solver = TLRSolver.from_problem(
            small_problem, accuracy=1e-8, band_size=2
        )
        rep = solver.factorize(executor="processes", n_ranks=2)
        assert rep.executor == "processes"
        assert solver.is_factorized

    def test_guards(self, small_problem, rule8):
        m = BandTLRMatrix.from_problem(small_problem, rule8, band_size=2)
        with pytest.raises(ConfigurationError):
            tlr_cholesky(m, executor="threads", n_workers=2)
        with pytest.raises(ConfigurationError):
            tlr_cholesky(m, n_ranks=2)
        with pytest.raises(ConfigurationError):
            tlr_cholesky(m, executor="sim")
        with pytest.raises(ConfigurationError):
            tlr_cholesky(m, executor="processes", adaptive_threshold=0.5)


class TestGuards:
    def test_chaos_kill_needs_real_processes(self, band2):
        g = _graph_for(band2, 2)
        with pytest.raises(ConfigurationError):
            execute_graph_distributed(
                g, band2, n_ranks=2, _inline=True, _chaos_kill=(0, 1)
            )

    def test_live_injector_rejected(self, band2):
        from repro.testing import FaultPlan

        g = _graph_for(band2, 2)
        injector = FaultPlan.parse("nan:*:0.01", seed=0).injector()
        with pytest.raises(ConfigurationError):
            execute_graph_distributed(
                g, band2, n_ranks=2, _inline=True, faults=injector
            )

    def test_distribution_rank_mismatch(self, band2):
        g = _graph_for(band2, 2)
        with pytest.raises(ConfigurationError):
            execute_graph_distributed(
                g, band2, n_ranks=3, distribution=_dist_for(g, 2)
            )
