"""Unit tests for the reusable dynamic memory pool."""

import numpy as np
import pytest

from repro.runtime import MemoryPool
from repro.utils import MemoryPoolError


class TestAllocate:
    def test_fresh_allocation(self):
        pool = MemoryPool()
        buf = pool.allocate((4, 5))
        assert buf.shape == (4, 5)
        assert pool.stats.allocations == 1
        assert pool.stats.reuses == 0

    def test_reuse_after_release(self):
        pool = MemoryPool()
        a = pool.allocate((4, 5))
        pool.release(a)
        b = pool.allocate((4, 5))
        assert pool.stats.reuses == 1

    def test_reuse_across_shapes_same_size(self):
        pool = MemoryPool()
        a = pool.allocate((4, 5))
        pool.release(a)
        b = pool.allocate((5, 4))  # 20 elements either way
        assert b.shape == (5, 4)
        assert pool.stats.reuses == 1

    def test_no_reuse_for_different_size(self):
        pool = MemoryPool()
        a = pool.allocate((4, 5))
        pool.release(a)
        pool.allocate((4, 6))
        assert pool.stats.reuses == 0
        assert pool.stats.allocations == 2


class TestRelease:
    def test_double_free_detected(self):
        pool = MemoryPool()
        a = pool.allocate((2, 2))
        pool.release(a)
        with pytest.raises(MemoryPoolError):
            pool.release(a)

    def test_foreign_buffer_rejected(self):
        pool = MemoryPool()
        with pytest.raises(MemoryPoolError):
            pool.release(np.zeros((2, 2)))


class TestAccounting:
    def test_outstanding_bytes(self):
        pool = MemoryPool()
        a = pool.allocate((10,))
        assert pool.stats.outstanding_bytes == 80
        pool.release(a)
        assert pool.stats.outstanding_bytes == 0
        assert pool.free_bytes == 80

    def test_peak_bytes(self):
        pool = MemoryPool()
        a = pool.allocate((10,))
        b = pool.allocate((10,))
        pool.release(a)
        pool.release(b)
        assert pool.stats.peak_bytes == 160

    def test_hit_rate(self):
        pool = MemoryPool()
        a = pool.allocate((3,))
        pool.release(a)
        pool.allocate((3,))
        assert pool.stats.hit_rate == pytest.approx(0.5)

    def test_hit_rate_empty_pool(self):
        assert MemoryPool().stats.hit_rate == 0.0


class TestTake:
    def test_take_copies_data(self):
        pool = MemoryPool()
        src = np.arange(6.0).reshape(2, 3)
        buf = pool.take(src)
        np.testing.assert_array_equal(buf, src)
        assert buf is not src
        # Adopted buffers are pool-owned and releasable.
        pool.release(buf)

    def test_take_reuses_freed_buffers(self):
        pool = MemoryPool()
        a = pool.allocate((2, 3))
        pool.release(a)
        buf = pool.take(np.ones((2, 3)))
        assert pool.stats.reuses == 1
        np.testing.assert_array_equal(buf, np.ones((2, 3)))
