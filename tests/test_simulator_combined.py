"""Integration tests combining simulator features (schedulers, stealing,
GPUs, tracing, recursive graphs) in one run — the configurations a real
study would actually use together."""

import pytest

from repro.analysis import occupancy_summary, paper_rank_model
from repro.obs import gantt
from repro.core import tune_band_size
from repro.distribution import BandDistribution, ProcessGrid
from repro.linalg import KernelClass
from repro.runtime import MachineSpec, build_cholesky_graph, simulate

B, NT, NODES = 1200, 32, 4


@pytest.fixture(scope="module")
def setup():
    model = paper_rank_model(B, accuracy=1e-8)
    band = tune_band_size(model.to_rank_grid(NT), B).band_size
    g = build_cholesky_graph(NT, band, B, model, recursive_split=2)
    dist = BandDistribution(ProcessGrid.squarest(NODES), band_size=band)
    return g, dist


@pytest.mark.parametrize("scheduler", ["priority", "fifo", "lifo"])
@pytest.mark.parametrize("stealing", [False, True])
@pytest.mark.parametrize("gpus", [0, 1])
def test_feature_matrix_all_complete(setup, scheduler, stealing, gpus):
    """Every feature combination completes all tasks deterministically."""
    g, dist = setup
    machine = MachineSpec(nodes=NODES, cores_per_node=4, gpus_per_node=gpus)
    res = simulate(
        g, dist, machine, scheduler=scheduler, work_stealing=stealing
    )
    assert res.makespan > 0
    assert res.total_flops == pytest.approx(g.total_flops())
    res2 = simulate(
        g, dist, machine, scheduler=scheduler, work_stealing=stealing
    )
    assert res2.makespan == res.makespan


def test_full_featured_run_with_trace(setup):
    g, dist = setup
    machine = MachineSpec(nodes=NODES, cores_per_node=4, gpus_per_node=1)
    res = simulate(
        g, dist, machine, work_stealing=True, collect_trace=True
    )
    assert res.trace is not None and len(res.trace) == g.n_tasks
    # Work conservation across cpu + gpu devices.
    total_kernel_time = sum(res.busy_by_kernel.values())
    assert total_kernel_time == pytest.approx(
        float(res.busy.sum() + res.gpu_busy.sum()), rel=1e-9
    )
    # The Gantt renders without error on the mixed-device trace.
    out = gantt(res, width=40)
    assert "P=potrf" in out
    s = occupancy_summary(res)
    assert 0 <= s.mean_occupancy <= 1


def test_zero_cost_with_gpu_and_stealing(setup):
    g, dist = setup
    machine = MachineSpec(nodes=NODES, cores_per_node=4, gpus_per_node=1)
    res = simulate(
        g, dist, machine,
        work_stealing=True,
        zero_cost_kernels={KernelClass.GEMM_LR, KernelClass.GEMM_LR_DENSE},
    )
    full = simulate(g, dist, machine, work_stealing=True)
    assert res.makespan <= full.makespan * (1 + 1e-9)
