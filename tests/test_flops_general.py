"""Unit tests for the rank-exact (generalized Table I) GEMM cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.flops import (
    flops_gemm_lr,
    flops_gemm_lr_dense_general,
    flops_gemm_lr_general,
    )


class TestReductionToTableI:
    @pytest.mark.parametrize("b,k", [(450, 30), (1200, 100), (2400, 400)])
    def test_gemm_lr_general_reduces_at_equal_ranks(self, b, k):
        """At ka = kb = kc = k the general model equals Table I's
        36bk² + 157k³ plus the (documented) small formation terms."""
        general = flops_gemm_lr_general(b, k, k, k)
        table = flops_gemm_lr(b, k)
        formation = 4.0 * b * k * k
        assert general == pytest.approx(table + formation, rel=1e-9)

    @pytest.mark.parametrize("b,k", [(450, 30), (1200, 100)])
    def test_gemm_lr_dense_general_matches_table_shape(self, b, k):
        """At kc = ka = k the recompression part matches Table I's
        36bk² + 157k³ (the published row rounds 36 down to 34)."""
        general = flops_gemm_lr_dense_general(b, k, k)
        expected = 2.0 * b * b * k + 36.0 * b * k * k + 157.0 * k**3
        assert general == pytest.approx(expected, rel=1e-9)


class TestHeterogeneousRanks:
    def test_low_rank_update_into_high_rank_c_is_cheap(self):
        """The scenario Table I's max-rank reading over-charges: a rank-10
        update into a rank-130 tile costs far less than a 130-rank GEMM."""
        b = 450
        general = flops_gemm_lr_general(b, 130, 10, 12)
        pessimistic = flops_gemm_lr(b, 130)
        assert general < 0.5 * pessimistic

    def test_update_rank_is_min_of_operands(self):
        """kb above ka cannot raise the stacked rank."""
        b = 300
        f1 = flops_gemm_lr_general(b, 20, 8, 100)
        f2 = flops_gemm_lr_general(b, 20, 8, 8)
        # Only the W-formation term grows with kb, not the recompression.
        assert f1 - f2 == pytest.approx(2.0 * b * 8 * (100 - 8))


@given(
    b=st.sampled_from([64, 450, 1200]),
    kc=st.integers(1, 200),
    ka=st.integers(1, 200),
    kb=st.integers(1, 200),
)
@settings(max_examples=60, deadline=None)
def test_property_general_costs_positive_and_monotone_in_kc(b, kc, ka, kb):
    f = flops_gemm_lr_general(b, kc, ka, kb)
    assert f > 0
    assert flops_gemm_lr_general(b, kc + 10, ka, kb) > f
    fd = flops_gemm_lr_dense_general(b, kc, ka)
    assert fd > 0
    assert flops_gemm_lr_dense_general(b, kc + 10, ka) > fd
