"""Unit tests for the Cholesky PTG unfolding and recursive expansion."""

import pytest

from repro.linalg import KernelClass
from repro.runtime import TaskKind, build_cholesky_graph, classify_gemm
from repro.runtime.task import task_sort_key
from repro.utils import ConfigurationError, SchedulingError

RANK = lambda i, j: 16


class TestGraphShape:
    def test_task_count(self):
        nt = 6
        g = build_cholesky_graph(nt, 1, 64, RANK)
        expected = sum(
            1 + 2 * (nt - k - 1) + (nt - k - 1) * (nt - k - 2) // 2
            for k in range(nt)
        )
        assert g.n_tasks == expected

    def test_single_tile(self):
        g = build_cholesky_graph(1, 1, 64, RANK)
        assert g.n_tasks == 1
        assert list(g.tasks)[0][0] is TaskKind.POTRF

    def test_validate_passes(self):
        build_cholesky_graph(8, 3, 64, RANK).validate()

    def test_topological_order_complete(self):
        g = build_cholesky_graph(5, 2, 64, RANK)
        order = g.topological_order()
        assert len(order) == g.n_tasks
        pos = {tid: i for i, tid in enumerate(order)}
        for tid, t in g.tasks.items():
            for e in t.deps:
                assert pos[e.src] < pos[tid]

    def test_first_task_is_potrf0(self):
        g = build_cholesky_graph(5, 1, 64, RANK)
        assert g.topological_order()[0] == (TaskKind.POTRF, 0)

    def test_rejects_bad_recursive_split(self):
        with pytest.raises(ConfigurationError):
            build_cholesky_graph(4, 1, 64, RANK, recursive_split=1)

    def test_duplicate_task_rejected(self):
        g = build_cholesky_graph(2, 1, 64, RANK)
        from repro.runtime.task import Task

        with pytest.raises(SchedulingError):
            g.add_task(
                Task(
                    tid=(TaskKind.POTRF, 0),
                    kind=TaskKind.POTRF,
                    kernel=KernelClass.POTRF_DENSE,
                    flops=1.0,
                    out_tile=(0, 0),
                )
            )


class TestKernelClassification:
    def test_pure_tlr_band1(self):
        g = build_cholesky_graph(6, 1, 64, RANK)
        kinds = {t.kernel for t in g.tasks.values()}
        assert kinds == {
            KernelClass.POTRF_DENSE,
            KernelClass.TRSM_LR,
            KernelClass.SYRK_LR,
            KernelClass.GEMM_LR,
        }

    def test_fully_dense_when_band_ge_nt(self):
        g = build_cholesky_graph(6, 6, 64, RANK)
        kinds = {t.kernel for t in g.tasks.values()}
        assert kinds == {
            KernelClass.POTRF_DENSE,
            KernelClass.TRSM_DENSE,
            KernelClass.SYRK_DENSE,
            KernelClass.GEMM_DENSE,
        }

    def test_band3_mixes_all_ten(self):
        g = build_cholesky_graph(12, 3, 64, RANK)
        kinds = {t.kernel for t in g.tasks.values()}
        assert len(kinds) == 10

    @pytest.mark.parametrize(
        "m,n,k,band,expected",
        [
            (2, 1, 0, 3, KernelClass.GEMM_DENSE),
            (3, 1, 0, 3, KernelClass.GEMM_DENSE_LRD),
            (4, 3, 0, 3, KernelClass.GEMM_DENSE_LRLR),
            (5, 1, 0, 3, KernelClass.GEMM_LR_DENSE),
            (8, 5, 0, 3, KernelClass.GEMM_LR),
        ],
    )
    def test_classify_gemm(self, m, n, k, band, expected):
        assert classify_gemm(m, n, k, band) is expected

    def test_classify_rejects_bad_indices(self):
        with pytest.raises(ConfigurationError):
            classify_gemm(1, 1, 0, 2)


class TestFlops:
    def test_dense_graph_total_close_to_n3_over_3(self):
        nt, b = 10, 64
        g = build_cholesky_graph(nt, nt, b, RANK)
        n = nt * b
        # Tiled dense Cholesky models n^3/3 leading order.
        assert g.total_flops() == pytest.approx(n**3 / 3, rel=0.05)

    def test_band1_cheaper_than_dense(self):
        g_tlr = build_cholesky_graph(12, 1, 256, lambda i, j: 8)
        g_dense = build_cholesky_graph(12, 12, 256, lambda i, j: 8)
        assert g_tlr.total_flops() < 0.2 * g_dense.total_flops()

    def test_rank_fn_drives_costs(self):
        g_low = build_cholesky_graph(8, 1, 256, lambda i, j: 4)
        g_high = build_cholesky_graph(8, 1, 256, lambda i, j: 64)
        assert g_high.total_flops() > g_low.total_flops()


class TestRecursiveExpansion:
    def test_flop_conservation(self):
        g = build_cholesky_graph(6, 2, 64, RANK)
        ge = build_cholesky_graph(6, 2, 64, RANK, recursive_split=2)
        assert ge.total_flops() == pytest.approx(g.total_flops(), rel=1e-9)

    def test_critical_path_shrinks(self):
        g = build_cholesky_graph(8, 3, 64, RANK)
        ge = build_cholesky_graph(8, 3, 64, RANK, recursive_split=2)
        assert ge.critical_path_flops() < g.critical_path_flops()

    def test_expanded_graph_is_valid(self):
        build_cholesky_graph(6, 2, 64, RANK, recursive_split=3).validate()

    def test_join_keeps_original_id(self):
        ge = build_cholesky_graph(4, 2, 64, RANK, recursive_split=2)
        assert (TaskKind.POTRF, 0) in ge.tasks
        assert ge.tasks[(TaskKind.POTRF, 0)].flops == 0.0  # join node

    def test_lr_tasks_not_expanded(self):
        ge = build_cholesky_graph(6, 1, 64, RANK, recursive_split=2)
        # band=1: only POTRFs are region (1); everything else unexpanded.
        trsm = ge.tasks[(TaskKind.TRSM, 3, 0)]
        assert trsm.flops > 0


class TestEdgeMetadata:
    def test_diagonal_edges_are_dense_sized(self):
        g = build_cholesky_graph(4, 1, 64, RANK)
        trsm = g.tasks[(TaskKind.TRSM, 2, 0)]
        potrf_edge = [e for e in trsm.deps if e.src == (TaskKind.POTRF, 0)][0]
        assert potrf_edge.elements == 64 * 64

    def test_offband_edges_are_compressed_sized(self):
        g = build_cholesky_graph(6, 1, 64, RANK)
        gemm = g.tasks[(TaskKind.GEMM, 4, 2, 0)]
        trsm_edge = [e for e in gemm.deps if e.src == (TaskKind.TRSM, 4, 0)][0]
        assert trsm_edge.elements == 2 * 64 * 16

    def test_gemm_chain_edge(self):
        g = build_cholesky_graph(6, 1, 64, RANK)
        gemm1 = g.tasks[(TaskKind.GEMM, 4, 2, 1)]
        assert any(e.src == (TaskKind.GEMM, 4, 2, 0) for e in gemm1.deps)


class TestPriorities:
    def test_panel_order_dominates(self):
        g = build_cholesky_graph(6, 1, 64, RANK)
        k0 = task_sort_key(g.tasks[(TaskKind.GEMM, 5, 4, 0)])
        k1 = task_sort_key(g.tasks[(TaskKind.POTRF, 1)])
        assert k0 < k1

    def test_potrf_before_gemm_same_panel(self):
        g = build_cholesky_graph(6, 1, 64, RANK)
        kp = task_sort_key(g.tasks[(TaskKind.POTRF, 1)])
        kg = task_sort_key(g.tasks[(TaskKind.GEMM, 5, 4, 1)])
        assert kp < kg
