"""Unit + property tests for compression and recompression."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    TruncationRule,
    compress_block,
    recompress,
    truncation_rank,
)
from repro.utils import CompressionError, ConfigurationError


def _lowrank_matrix(m, n, k, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return scale * (rng.standard_normal((m, k)) @ rng.standard_normal((k, n)))


class TestTruncationRule:
    def test_defaults(self):
        r = TruncationRule()
        assert r.eps == 1e-8
        assert r.norm == "spectral"
        assert r.maxrank is None

    def test_rejects_bad_norm(self):
        with pytest.raises(ConfigurationError):
            TruncationRule(norm="nuclear")

    def test_rejects_nonpositive_eps(self):
        with pytest.raises(ConfigurationError):
            TruncationRule(eps=0.0)

    def test_with_maxrank(self):
        r = TruncationRule().with_maxrank(7)
        assert r.maxrank == 7
        assert TruncationRule().maxrank is None  # original untouched


class TestTruncationRank:
    def test_spectral_counts_above_eps(self):
        s = np.array([1.0, 0.1, 1e-9])
        assert truncation_rank(s, TruncationRule(eps=1e-8)) == 2

    def test_frobenius_tail_energy(self):
        s = np.array([1.0, 3e-9, 4e-9])  # tail norm 5e-9 > 1e-9 -> keep more
        assert truncation_rank(s, TruncationRule(eps=1e-9, norm="frobenius")) == 3
        assert truncation_rank(s, TruncationRule(eps=6e-9, norm="frobenius")) == 1

    def test_relative_scaling(self):
        s = np.array([100.0, 1.0, 1e-7])
        assert truncation_rank(s, TruncationRule(eps=1e-4, relative=True)) == 2

    def test_maxrank_caps(self):
        s = np.ones(10)
        assert truncation_rank(s, TruncationRule(eps=1e-8, maxrank=4)) == 4

    def test_empty(self):
        assert truncation_rank(np.array([]), TruncationRule()) == 0


class TestCompressBlock:
    def test_exact_rank_recovery(self):
        a = _lowrank_matrix(40, 30, 5, seed=1)
        t = compress_block(a, TruncationRule(eps=1e-10, relative=True))
        assert t.rank == 5
        np.testing.assert_allclose(t.to_dense(), a, atol=1e-8)

    def test_spectral_error_bound(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((50, 50))
        eps = 1e-2
        t = compress_block(a, TruncationRule(eps=eps, relative=True))
        err = np.linalg.norm(a - t.to_dense(), 2)
        assert err <= eps * np.linalg.norm(a, 2) * 1.001

    def test_zero_matrix_gives_rank_zero(self):
        t = compress_block(np.zeros((10, 8)), TruncationRule())
        assert t.rank == 0

    def test_balanced_factors(self):
        a = _lowrank_matrix(30, 30, 3, seed=3, scale=100.0)
        t = compress_block(a, TruncationRule(eps=1e-6))
        # sqrt(s) folding balances the factor norms.
        assert np.linalg.norm(t.u) == pytest.approx(np.linalg.norm(t.v), rel=1e-6)

    def test_maxrank_truncates(self):
        a = np.diag(np.arange(1, 11, dtype=float))
        t = compress_block(a, TruncationRule(eps=1e-12, maxrank=4))
        assert t.rank == 4

    def test_rectangular(self):
        a = _lowrank_matrix(20, 60, 4, seed=4)
        t = compress_block(a, TruncationRule(eps=1e-10, relative=True))
        assert t.shape == (20, 60)
        np.testing.assert_allclose(t.to_dense(), a, atol=1e-7)


class TestRecompress:
    def test_merges_redundant_rank(self):
        a = _lowrank_matrix(30, 25, 3, seed=5)
        t1 = compress_block(a, TruncationRule(eps=1e-12, relative=True))
        # Stack the same matrix twice: u_stack @ v_stack.T = 2a with rank 3.
        res = recompress(
            np.hstack([t1.u, t1.u]),
            np.hstack([t1.v, t1.v]),
            TruncationRule(eps=1e-10, relative=True),
        )
        assert res.rank_before == 6
        assert res.rank_after == 3
        np.testing.assert_allclose(res.tile.to_dense(), 2 * a, atol=1e-7)

    def test_cancellation_to_zero(self):
        a = _lowrank_matrix(20, 20, 4, seed=6)
        t = compress_block(a, TruncationRule(eps=1e-12, relative=True))
        res = recompress(
            np.hstack([t.u, t.u]),
            np.hstack([t.v, -t.v]),
            TruncationRule(eps=1e-8),
        )
        assert res.rank_after == 0
        assert res.tile.rank == 0

    def test_growth_flag(self):
        a = _lowrank_matrix(30, 30, 2, seed=7)
        b = _lowrank_matrix(30, 30, 5, seed=8)
        ta = compress_block(a, TruncationRule(eps=1e-10, relative=True))
        tb = compress_block(b, TruncationRule(eps=1e-10, relative=True))
        res = recompress(
            np.hstack([ta.u, tb.u]),
            np.hstack([ta.v, tb.v]),
            TruncationRule(eps=1e-10, relative=True),
            previous_rank=ta.rank,
        )
        assert res.rank_after == 7
        assert res.grew

    def test_no_growth_flag_when_shrinks(self):
        a = _lowrank_matrix(30, 30, 4, seed=9)
        t = compress_block(a, TruncationRule(eps=1e-10, relative=True))
        res = recompress(t.u, t.v, TruncationRule(eps=1e-10, relative=True),
                         previous_rank=4)
        assert not res.grew

    def test_empty_stack(self):
        res = recompress(np.zeros((5, 0)), np.zeros((6, 0)), TruncationRule())
        assert res.rank_after == 0
        assert res.tile.shape == (5, 6)

    def test_rank_mismatch_rejected(self):
        with pytest.raises(CompressionError):
            recompress(np.zeros((5, 2)), np.zeros((5, 3)), TruncationRule())


@given(
    m=st.integers(5, 30),
    n=st.integers(5, 30),
    k=st.integers(1, 5),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None)
def test_property_compression_roundtrip_error(m, n, k, seed):
    """Compression error never exceeds the (relative spectral) threshold."""
    a = _lowrank_matrix(m, n, min(k, m, n), seed=seed)
    eps = 1e-6
    t = compress_block(a, TruncationRule(eps=eps, relative=True))
    norm = np.linalg.norm(a, 2)
    if norm > 0:
        assert np.linalg.norm(a - t.to_dense(), 2) <= eps * norm * 1.01


@given(
    m=st.integers(5, 25),
    k1=st.integers(1, 4),
    k2=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None)
def test_property_recompression_is_sum(m, k1, k2, seed):
    """recompress(U1|U2, V1|V2) approximates A1 + A2 within eps."""
    rng = np.random.default_rng(seed)
    u1, v1 = rng.standard_normal((m, k1)), rng.standard_normal((m, k1))
    u2, v2 = rng.standard_normal((m, k2)), rng.standard_normal((m, k2))
    target = u1 @ v1.T + u2 @ v2.T
    res = recompress(
        np.hstack([u1, u2]), np.hstack([v1, -(-v2)]),
        TruncationRule(eps=1e-9, relative=True),
    )
    np.testing.assert_allclose(res.tile.to_dense(), target, atol=1e-6 * (1 + np.abs(target).max()))
    # Rank minimality: never exceeds the stacked rank.
    assert res.rank_after <= k1 + k2
