"""Solver-service suite: cache, database, server, loadgen, CLI.

The claims under test are the serving-layer ones:

* a factor identity is the full tuple (geometry, kernel θ, ε, band,
  ε-resolved precision identity) — perturb any piece and the cache
  treats it as a different factor;
* a cache-warm identity **never refactorizes**, no matter how many
  concurrent requests race the miss (single-flight), and the hit-rate
  counters prove it;
* an fp32-touched factor can never be installed behind — and therefore
  never served to — an fp64-strict key (the precision-identity
  invariant), while an fp64 factor may serve an fp32-adaptive request;
* solves served through the concurrent, batched pipeline match the
  dense scipy reference to factorization accuracy;
* admission control rejects explicitly at the configured depth,
  deadline-lapsed requests are dropped (not batched), and every
  lifecycle transition feeds the obs counters.
"""

import threading

import numpy as np
import pytest

from repro import TLRSolver, obs, st_3d_exp_problem
from repro.__main__ import build_parser, main
from repro.core.solve import solve_many
from repro.linalg.batched import split_solution, stack_rhs
from repro.linalg.precision import (
    MixedPrecisionReport,
    identity_compatible,
    precision_identity,
)
from repro.service import (
    EVENTS,
    FactorCache,
    FactorKey,
    FactorRecipe,
    ServiceConfig,
    ServiceDatabase,
    SolverService,
    geometry_hash,
    percentiles,
    records_from_load,
    run_load,
)
from repro.utils.exceptions import (
    ConfigurationError,
    DeadlineExceededError,
    KernelError,
    QueueFullError,
    ServiceClosedError,
)


@pytest.fixture(scope="module")
def tiny_problem():
    """A 256-point problem (NT = 4): cheap enough to factorize repeatedly."""
    return st_3d_exp_problem(256, 64, seed=3)


def _recipe(problem, **kw):
    kw.setdefault("accuracy", 1e-6)
    kw.setdefault("band_size", 1)
    return FactorRecipe(problem=problem, **kw)


# ---------------------------------------------------------------------------
# precision identity
# ---------------------------------------------------------------------------
class TestPrecisionIdentity:
    def test_plain_modes_resolve_to_themselves(self):
        assert precision_identity(None, 1e-8) == "fp64"
        assert precision_identity("fp64", 1e-3) == "fp64"
        assert precision_identity("fp32", 1e-12) == "fp32"

    def test_adaptive_resolves_by_eps(self):
        # above the fp32 floor (1e-7) adaptive may demote -> its own identity
        assert precision_identity("adaptive", 1e-4) == "fp32-adaptive"
        # below the floor adaptive certifies nothing -> an fp64 factor
        assert precision_identity("adaptive", 1e-9) == "fp64"

    def test_compatibility_is_exact_or_fp64_superset(self):
        assert identity_compatible("fp64", "fp64")
        assert identity_compatible("fp32-adaptive", "fp32-adaptive")
        # an fp64 factor is valid for any request (strict superset)
        assert identity_compatible("fp32-adaptive", "fp64")
        assert identity_compatible("fp32", "fp64")
        # but an fp32-touched factor never serves an fp64-strict request
        assert not identity_compatible("fp64", "fp32-adaptive")
        assert not identity_compatible("fp64", "fp32")

    def test_report_identity_mirrors_request_side(self):
        demoted = MixedPrecisionReport(
            demoted_tiles=5, bytes_full=100, bytes_mixed=60, mode="adaptive"
        )
        clean = MixedPrecisionReport(
            demoted_tiles=0, bytes_full=100, bytes_mixed=100, mode="adaptive"
        )
        assert demoted.identity == "fp32-adaptive"
        # adaptive that demoted nothing IS an fp64 factor (bitwise)
        assert clean.identity == "fp64"
        assert MixedPrecisionReport(0, 1, 1, mode="").identity == "fp64"
        assert MixedPrecisionReport(0, 1, 1, mode="fp64").identity == "fp64"

    def test_request_and_realized_sides_agree_end_to_end(self, tiny_problem):
        """Satellite fix: the two resolution paths can never disagree."""
        for spec, eps in [(None, 1e-6), ("adaptive", 1e-4),
                          ("adaptive", 1e-9), ("fp64", 1e-4)]:
            matrix, report = _recipe(
                tiny_problem, accuracy=eps, precision=spec
            ).build()
            assert identity_compatible(
                precision_identity(spec, eps),
                report.precision_report.identity
                if report.precision_report is not None else "fp64",
            )


# ---------------------------------------------------------------------------
# factor identity
# ---------------------------------------------------------------------------
class TestFactorKey:
    def test_same_inputs_same_key(self, tiny_problem):
        k1 = FactorKey.from_problem(tiny_problem, accuracy=1e-6, band_size=1)
        k2 = FactorKey.from_problem(tiny_problem, accuracy=1e-6, band_size=1)
        assert k1 == k2
        assert hash(k1) == hash(k2)
        assert k1.digest() == k2.digest()

    def test_every_field_is_identity(self, tiny_problem):
        base = FactorKey.from_problem(tiny_problem, accuracy=1e-6, band_size=1)
        assert base != FactorKey.from_problem(
            tiny_problem, accuracy=1e-5, band_size=1
        )
        assert base != FactorKey.from_problem(
            tiny_problem, accuracy=1e-6, band_size=2
        )
        # "auto" is part of the identity even when it tunes to the same int
        assert base != FactorKey.from_problem(
            tiny_problem, accuracy=1e-6, band_size="auto"
        )
        assert base != FactorKey.from_problem(
            tiny_problem, accuracy=1e-6, band_size=1, maxrank=16
        )
        assert base != FactorKey.from_problem(
            tiny_problem, accuracy=1e-6, band_size=1, precision="fp32"
        )

    def test_geometry_hash_sees_the_points(self, tiny_problem):
        other = st_3d_exp_problem(256, 64, seed=4)
        assert geometry_hash(tiny_problem) == geometry_hash(tiny_problem)
        assert geometry_hash(tiny_problem) != geometry_hash(other)

    def test_recipe_key_matches_solver_factor_key(self, tiny_problem):
        recipe = _recipe(tiny_problem)
        solver = TLRSolver.from_problem(
            tiny_problem, accuracy=1e-6, band_size=1
        )
        solver.factorize()
        assert solver.factor_key() == recipe.key()

    def test_factor_key_needs_the_problem(self, small_tlr):
        solver = TLRSolver(matrix=small_tlr)
        with pytest.raises(ConfigurationError):
            solver.factor_key()


# ---------------------------------------------------------------------------
# the cache
# ---------------------------------------------------------------------------
class TestFactorCache:
    def test_miss_then_build_then_hits(self, tiny_problem):
        cache = FactorCache()
        recipe = _recipe(tiny_problem)
        assert cache.get(recipe.key()) is None           # miss
        entry = cache.get_or_build(recipe)               # build
        assert cache.get_or_build(recipe) is entry       # hit
        stats = cache.stats()
        assert stats.factorizations == 1
        assert stats.misses == 2                         # explicit get + build
        assert stats.hits == 1
        assert stats.resident_entries == 1
        assert stats.resident_bytes == entry.nbytes > 0

    def test_lru_eviction_by_bytes(self, tiny_problem):
        matrix, report = _recipe(tiny_problem).build()
        nbytes = FactorCache.factor_nbytes(matrix)
        cache = FactorCache(max_bytes=2 * nbytes)
        keys = [
            FactorKey.from_problem(tiny_problem, accuracy=eps, band_size=1)
            for eps in (1e-4, 1e-5, 1e-6)
        ]
        cache.install(keys[0], matrix, report)
        cache.install(keys[1], matrix, report)
        assert cache.get(keys[0]) is not None   # k0 now most-recent, k1 LRU
        cache.install(keys[2], matrix, report)  # over budget -> evict k1
        assert cache.stats().evictions == 1
        assert cache.keys() == [keys[0], keys[2]]
        assert cache.stats().resident_bytes == 2 * nbytes

    def test_never_evicts_the_only_entry(self, tiny_problem):
        matrix, report = _recipe(tiny_problem).build()
        cache = FactorCache(max_bytes=1)        # smaller than any factor
        key = _recipe(tiny_problem).key()
        cache.install(key, matrix, report)
        assert cache.get(key) is not None       # oversized but resident
        assert cache.stats().evictions == 0

    def test_install_refuses_precision_mismatch(self, tiny_problem):
        """The satellite invariant, enforced at the install boundary."""
        matrix, report = _recipe(
            tiny_problem, accuracy=1e-4, precision="adaptive"
        ).build()
        assert report.precision_report.identity == "fp32-adaptive"
        strict_key = FactorKey.from_problem(
            tiny_problem, accuracy=1e-4, band_size=1, precision="fp64"
        )
        with pytest.raises(ConfigurationError, match="fp64-strict"):
            FactorCache().install(strict_key, matrix, report)

    def test_fp64_factor_may_serve_adaptive_key(self, tiny_problem):
        matrix, report = _recipe(tiny_problem, accuracy=1e-4).build()
        adaptive_key = FactorKey.from_problem(
            tiny_problem, accuracy=1e-4, band_size=1, precision="adaptive"
        )
        assert adaptive_key.precision == "fp32-adaptive"
        entry = FactorCache().install(adaptive_key, matrix, report)
        assert entry.realized_precision == "fp64"

    def test_concurrent_misses_factorize_exactly_once(self, tiny_problem):
        cache = FactorCache()
        recipe = _recipe(tiny_problem)
        entries, n_threads = [], 6
        barrier = threading.Barrier(n_threads)

        def hit_it():
            barrier.wait()
            entries.append(cache.get_or_build(recipe))

        threads = [threading.Thread(target=hit_it) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(e) for e in entries}) == 1
        stats = cache.stats()
        assert stats.factorizations == 1    # single-flight
        assert stats.misses == 1            # losers re-counted as hits
        assert stats.hits == n_threads - 1
        assert stats.hit_rate == pytest.approx((n_threads - 1) / n_threads)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ConfigurationError):
            FactorCache(max_bytes=0)


class TestWarmStart:
    def test_cold_build_checkpoints_then_miss_resumes(
        self, tiny_problem, tmp_path
    ):
        warm = tmp_path / "warm"
        recipe = _recipe(tiny_problem)
        cold = FactorCache(warm_dir=warm)
        cold_entry = cold.get_or_build(recipe)
        assert cold.stats().warm_starts == 0
        ckpt_dir = warm / recipe.key().digest()
        assert any(ckpt_dir.glob("ckpt-*.json"))

        # a new cache (fresh process, same warm tier) resumes, not rebuilds
        rehydrated = FactorCache(warm_dir=warm)
        entry = rehydrated.get_or_build(recipe)
        stats = rehydrated.stats()
        assert stats.warm_starts == 1
        assert stats.factorizations == 1
        for (i, j), tile in cold_entry.matrix.tiles.items():
            np.testing.assert_array_equal(
                tile.to_dense(), entry.matrix.tiles[i, j].to_dense()
            )


# ---------------------------------------------------------------------------
# the scheduler database
# ---------------------------------------------------------------------------
class _Req:
    def __init__(self, rid):
        self.id = rid


class TestServiceDatabase:
    def test_lifecycle_transitions_fire_handlers(self):
        db = ServiceDatabase(max_depth=4)
        seen = []
        for event in EVENTS:
            db.on(event, lambda e, r, d: seen.append((e, r.id)))
        req = _Req(1)
        assert db.admit(req)
        db.start(req)
        db.finish(req, "completed")
        assert seen == [("submitted", 1), ("started", 1), ("completed", 1)]
        assert db.depth() == 0 and db.executing() == 0
        assert db.outcome_counts() == {"completed": 1}
        assert db.recent() == [(1, "completed")]

    def test_admission_is_bounded_and_explicit(self):
        db = ServiceDatabase(max_depth=2)
        assert db.admit(_Req(1)) and db.admit(_Req(2))
        assert not db.admit(_Req(3))            # full -> rejected transition
        assert db.depth() == 2
        assert db.outcome_counts()["rejected"] == 1

    def test_unknown_event_and_outcome_raise(self):
        db = ServiceDatabase()
        with pytest.raises(KeyError):
            db.on("exploded", lambda *a: None)
        with pytest.raises(KeyError):
            db.finish(_Req(1), "exploded")


# ---------------------------------------------------------------------------
# multi-RHS marshaling
# ---------------------------------------------------------------------------
class TestMultiRhs:
    def test_stack_and_split_roundtrip(self, rng):
        cols = [rng.standard_normal(8), rng.standard_normal((8, 3)),
                rng.standard_normal(8)]
        stacked, widths = stack_rhs(cols)
        assert stacked.shape == (8, 5) and widths == [1, 3, 1]
        back = split_solution(stacked, widths, cols)
        assert back[0].shape == (8,) and back[1].shape == (8, 3)
        np.testing.assert_array_equal(back[1], stacked[:, 1:4])

    def test_stack_rejects_bad_input(self, rng):
        with pytest.raises(KernelError):
            stack_rhs([])
        with pytest.raises(KernelError):
            stack_rhs([rng.standard_normal((2, 2, 2))])

    def test_solve_many_matches_individual_solves(
        self, tiny_problem, rng
    ):
        matrix, _ = _recipe(tiny_problem).build()
        rhs_list = [rng.standard_normal(tiny_problem.n) for _ in range(4)]
        stacked = solve_many(matrix, rhs_list)
        dense = tiny_problem.dense()
        for rhs, x in zip(rhs_list, stacked):
            ref = np.linalg.solve(dense, rhs)
            assert np.linalg.norm(x - ref) / np.linalg.norm(ref) < 1e-5


# ---------------------------------------------------------------------------
# the service
# ---------------------------------------------------------------------------
class TestSolverService:
    def test_concurrent_batched_solves_match_scipy(
        self, small_problem, small_dense, rng
    ):
        config = ServiceConfig(n_workers=2, max_batch=8)
        with SolverService(config) as svc:
            session = svc.session(small_problem, accuracy=1e-8, band_size=1)
            session.warm()
            rhs_list = [
                rng.standard_normal(small_problem.n) for _ in range(16)
            ]
            tickets = [session.submit(b) for b in rhs_list]
            results = [t.result(timeout=30) for t in tickets]
            stats = svc.stats()
        for rhs, x in zip(rhs_list, results):
            ref = np.linalg.solve(small_dense, rhs)
            assert np.linalg.norm(x - ref) / np.linalg.norm(ref) < 1e-6
        assert stats.completed == 16
        assert stats.max_batch_width > 1        # batching actually engaged
        assert stats.cache.factorizations == 1

    def test_cache_warm_identity_never_refactorizes(self, small_problem):
        with SolverService(ServiceConfig(n_workers=2)) as svc:
            s1 = svc.session(small_problem, accuracy=1e-6, band_size=1)
            s1.warm()
            # a second session on the same identity shares the factor
            s2 = svc.session(small_problem, accuracy=1e-6, band_size=1)
            for _ in range(3):
                s1.solve(np.ones(small_problem.n), timeout=30)
                s2.solve(np.ones(small_problem.n), timeout=30)
            stats = svc.stats().cache
        assert stats.factorizations == 1
        assert stats.misses == 1
        assert stats.hits >= 6                  # one per served batch
        assert stats.hit_rate >= 6 / 7

    def test_distinct_precision_identities_get_distinct_factors(
        self, tiny_problem
    ):
        """fp64-strict traffic never touches the fp32-adaptive factor."""
        with SolverService(ServiceConfig(n_workers=1)) as svc:
            strict = svc.session(tiny_problem, accuracy=1e-4, band_size=1)
            loose = svc.session(
                tiny_problem, accuracy=1e-4, band_size=1,
                precision="adaptive",
            )
            assert strict.key != loose.key
            e_strict, e_loose = strict.warm(), loose.warm()
        assert e_strict is not e_loose
        assert e_strict.realized_precision == "fp64"
        assert e_loose.realized_precision == "fp32-adaptive"
        assert svc.stats().cache.factorizations == 2

    def test_backpressure_rejects_at_depth(self, small_problem):
        svc = SolverService(ServiceConfig(n_workers=1, max_queue_depth=2))
        session = svc.session(small_problem, accuracy=1e-6, band_size=1)
        # not started: submissions queue deterministically
        t1 = session.submit(np.ones(small_problem.n))
        t2 = session.submit(np.ones(small_problem.n))
        with pytest.raises(QueueFullError):
            session.submit(np.ones(small_problem.n))
        assert svc.stats().rejected == 1
        svc.stop()      # fails the queued pair with ServiceClosedError
        for t in (t1, t2):
            with pytest.raises(ServiceClosedError):
                t.result(timeout=5)

    def test_deadline_lapsed_requests_are_dropped(self, small_problem):
        svc = SolverService(ServiceConfig(n_workers=1))
        session = svc.session(small_problem, accuracy=1e-6, band_size=1)
        ticket = session.submit(
            np.ones(small_problem.n), deadline_s=-1.0   # already lapsed
        )
        live = session.submit(np.ones(small_problem.n))
        svc.start()
        with pytest.raises(DeadlineExceededError):
            ticket.result(timeout=30)
        live.result(timeout=30)                 # the live one still solves
        stats = svc.stats()
        svc.stop()
        assert stats.dropped == 1
        assert stats.completed == 1

    def test_submit_after_stop_is_closed(self, small_problem):
        svc = SolverService(ServiceConfig(n_workers=1)).start()
        session = svc.session(small_problem, accuracy=1e-6, band_size=1)
        svc.stop()
        with pytest.raises(ServiceClosedError):
            session.submit(np.ones(small_problem.n))

    def test_register_solver_serves_without_service_factorization(
        self, small_problem, small_dense, rng
    ):
        solver = TLRSolver.from_problem(
            small_problem, accuracy=1e-8, band_size=1
        )
        solver.factorize(n_workers=2)
        with SolverService(ServiceConfig(n_workers=1)) as svc:
            session = svc.register_solver(solver)
            assert session.key == solver.factor_key()
            rhs = rng.standard_normal(small_problem.n)
            x = session.solve(rhs, timeout=30)
            stats = svc.stats().cache
        ref = np.linalg.solve(small_dense, rhs)
        assert np.linalg.norm(x - ref) / np.linalg.norm(ref) < 1e-6
        assert stats.factorizations == 0        # adopted, not rebuilt
        assert stats.installs == 1
        assert stats.hits == 1 and stats.misses == 0

    def test_register_solver_requires_factorized(self, small_problem):
        solver = TLRSolver.from_problem(
            small_problem, accuracy=1e-6, band_size=1
        )
        with pytest.raises(ConfigurationError):
            SolverService().register_solver(solver)

    def test_config_validation(self):
        for bad in (
            dict(n_workers=0), dict(max_queue_depth=0), dict(max_batch=0),
        ):
            with pytest.raises(ConfigurationError):
                ServiceConfig(**bad)


class TestObsInstrumentation:
    def test_lifecycle_counters_spans_and_gauges(self, small_problem, rng):
        with obs.observe() as run:
            with SolverService(ServiceConfig(n_workers=1, max_batch=8)) as svc:
                session = svc.session(
                    small_problem, accuracy=1e-6, band_size=1
                )
                session.warm()
                tickets = [
                    session.submit(rng.standard_normal(small_problem.n))
                    for _ in range(6)
                ]
                for t in tickets:
                    t.result(timeout=30)
        metrics = run.metrics
        assert metrics.counter("service_request_submitted").value == 6
        assert metrics.counter("service_request_completed").value == 6
        assert metrics.counter("service_cache_miss").value == 1
        assert metrics.counter("service_cache_hit").value >= 1
        assert metrics.gauge("service_queue_depth").value == 0

        names = [s.name for s in run.tracer.spans]
        assert "service_factorize" in names
        assert "service_batch" in names
        # one replayed full-lifetime span per completed request
        assert names.count("service_request") == 6


class TestPercentiles:
    def test_known_distribution(self):
        p50, p95, p99 = percentiles(list(range(1, 101)))
        assert p50 == pytest.approx(50.5)
        assert p95 == pytest.approx(95.05)
        assert p99 == pytest.approx(99.01)

    def test_empty_is_zeros(self):
        assert percentiles([]) == (0.0, 0.0, 0.0)


# ---------------------------------------------------------------------------
# loadgen
# ---------------------------------------------------------------------------
class TestLoadgen:
    def test_closed_loop_completes_quota(self, small_problem):
        with SolverService(ServiceConfig(n_workers=1, max_batch=8)) as svc:
            session = svc.session(small_problem, accuracy=1e-6, band_size=1)
            report = run_load(
                session, clients=4, requests_per_client=3, seed=1
            )
        assert report.completed == 12
        assert report.failed == 0 and report.dropped == 0
        assert report.factorizations == 1       # warmed outside the window
        assert len(report.latencies_s) == 12
        assert 0 < report.p50_ms <= report.p95_ms <= report.p99_ms
        assert report.throughput_rps > 0

    def test_records_carry_latencies_as_samples(self, small_problem):
        with SolverService(ServiceConfig(n_workers=1)) as svc:
            session = svc.session(small_problem, accuracy=1e-6, band_size=1)
            report = run_load(
                session, clients=2, requests_per_client=3, seed=1
            )
        record = records_from_load(report, name="svc", run="r1")
        # the record's median IS the run's p50 -> the compare dual gate
        # applies to serving latency unchanged
        assert record.timing.median_s * 1e3 == pytest.approx(report.p50_ms)
        assert record.timing.times_s == report.latencies_s
        assert record.config["completed"] == 6
        assert record.config["clients"] == 2

    def test_sketch_tracks_exact_median(self, small_problem):
        """The streaming sketch sees every client latency, and its p50
        stays within one bucket's relative error of the exact median
        computed from the raw samples."""
        import numpy as np

        with SolverService(ServiceConfig(n_workers=1, max_batch=8)) as svc:
            session = svc.session(small_problem, accuracy=1e-6, band_size=1)
            report = run_load(
                session, clients=4, requests_per_client=5, seed=2
            )
        sk = report.sketch
        assert sk is not None
        assert sk.count == report.completed == len(report.latencies_s)
        exact_p50 = float(np.percentile(report.latencies_s, 50))
        # nearest-rank vs interpolated may differ by one order statistic;
        # bound against the bracketing samples around the exact median.
        ordered = sorted(report.latencies_s)
        lo = max(v for v in ordered if v <= exact_p50)
        hi = min(v for v in ordered if v >= exact_p50)
        assert lo * (1 - sk.rel_err) <= sk.quantile(0.5) <= hi * (1 + sk.rel_err)

    def test_client_latencies_stream_into_live_plane(self, small_problem):
        from repro.obs import LiveAggregator

        live = LiveAggregator()
        with SolverService(ServiceConfig(n_workers=1), live=live) as svc:
            session = svc.session(small_problem, accuracy=1e-6, band_size=1)
            report = run_load(
                session, clients=2, requests_per_client=3, seed=1
            )
        live.force_collect()
        snap = live.snapshot()
        assert snap["latency"]["client_latency_s"]["count"] == report.completed
        # the service side streamed too: submit/complete counters + the
        # registered providers
        assert snap["counters"]["service_request_completed"] == report.completed
        assert snap["providers"]["cache"]["factorizations"] == 1
        assert snap["providers"]["workers"]["n_workers"] == 1
        live.stop()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestServiceCLI:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.band == "auto"
        assert args.service_workers == 2
        assert args.max_queue == 64
        assert args.max_batch == 16

    def test_band_arg_validation(self):
        assert build_parser().parse_args(["serve", "--band", "3"]).band == 3
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--band", "wide"])

    def test_serve_smoke(self, capsys):
        rc = main([
            "serve", "--n", "256", "--tile", "64", "--accuracy", "1e-6",
            "--band", "1", "--clients", "2", "--requests", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "factor resident" in out
        assert "p50 latency (ms)" in out
        assert "factorizations" in out

    def test_bench_service_smoke_appends_records(self, capsys, tmp_path):
        out_path = tmp_path / "hist.jsonl"
        rc = main([
            "bench-service", "--smoke", "--clients", "4", "--requests", "3",
            "--label", "t1", "--out", str(out_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "p50 ratio" in out
        import json

        rows = [json.loads(line) for line in out_path.read_text().splitlines()]
        assert [r["name"] for r in rows] == [
            "service_solve_solo", "service_solve_batched",
        ]
        assert all(r["run"] == "t1" for r in rows)
