"""Tests for the pluggable compression backends and parallel assembly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import st_3d_exp_problem
from repro.linalg import (
    RandomizedSVDBackend,
    RsvdConfig,
    SVDBackend,
    TruncationRule,
    compress_block,
    get_backend,
    recompress,
    set_default_backend,
    tile_seed,
)
from repro.matrix import BandTLRMatrix
from repro.runtime import parallel_map
from repro.utils import CompressionError, ConfigurationError


def _matern_tile(n, b, i, j, seed=0):
    """An off-diagonal tile of the st-3D-exp covariance (genuinely low-rank)."""
    return st_3d_exp_problem(n, b, seed=seed).tile(i, j)


def _lowrank_matrix(m, n, k, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((m, k)) @ rng.standard_normal((k, n))


class TestRegistry:
    def test_names_resolve_to_shared_instances(self):
        assert get_backend("svd") is get_backend("svd")
        assert get_backend("rsvd") is get_backend("rsvd")
        assert isinstance(get_backend("svd"), SVDBackend)
        assert isinstance(get_backend("rsvd"), RandomizedSVDBackend)

    def test_instance_passthrough(self):
        b = RandomizedSVDBackend(seed=7)
        assert get_backend(b) is b

    def test_default_is_svd(self):
        assert get_backend(None).name == "svd"

    def test_set_default_backend_roundtrip(self):
        try:
            set_default_backend("rsvd")
            assert get_backend(None).name == "rsvd"
        finally:
            set_default_backend("svd")
        assert get_backend(None).name == "svd"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_backend("rrqr")


class TestRsvdConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RsvdConfig(block_size=0)
        with pytest.raises(ConfigurationError):
            RsvdConfig(block_size=32, max_block=16)
        with pytest.raises(ConfigurationError):
            RsvdConfig(block_growth=0.5)
        with pytest.raises(ConfigurationError):
            RsvdConfig(fallback_fraction=0.0)


class TestRsvdAccuracy:
    @pytest.mark.parametrize("b", [100, 150, 250])
    @pytest.mark.parametrize("eps", [1e-4, 1e-6, 1e-8])
    def test_matches_exact_svd_within_eps_on_matern(self, b, eps):
        a = _matern_tile(4 * b, b, 3, 0, seed=2021)
        rule = TruncationRule(eps=eps)
        exact = compress_block(a, rule)
        rand = compress_block(a, rule, backend="rsvd")
        # Both reconstructions honour the spectral-norm bound (the rsvd
        # certificate is probabilistic, so allow a small slack factor).
        assert np.linalg.norm(a - exact.to_dense(), 2) <= eps
        assert np.linalg.norm(a - rand.to_dense(), 2) <= 3.0 * eps
        # And the adaptive rank lands at (essentially) the exact rank.
        assert abs(rand.rank - exact.rank) <= 2

    def test_relative_rule(self):
        a = 1e6 * _matern_tile(400, 100, 2, 0, seed=5)
        rule = TruncationRule(eps=1e-6, relative=True)
        tile = compress_block(a, rule, backend="rsvd")
        s1 = np.linalg.norm(a, 2)
        assert np.linalg.norm(a - tile.to_dense(), 2) <= 3e-6 * s1

    def test_frobenius_rule(self):
        a = _matern_tile(400, 100, 2, 0, seed=5)
        rule = TruncationRule(eps=1e-6, norm="frobenius")
        tile = compress_block(a, rule, backend="rsvd")
        assert np.linalg.norm(a - tile.to_dense()) <= 3e-6

    def test_maxrank_cap_respected(self):
        a = _matern_tile(400, 100, 2, 0, seed=5)
        rule = TruncationRule(eps=1e-12, maxrank=10)
        tile = compress_block(a, rule, backend="rsvd")
        assert tile.rank <= 10

    def test_full_rank_matrix_falls_back_to_exact(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((120, 120))  # no decay: must fall back
        rule = TruncationRule(eps=1e-8)
        tile = compress_block(a, rule, backend="rsvd")
        exact = compress_block(a, rule)
        assert tile.rank == exact.rank
        np.testing.assert_allclose(tile.to_dense(), a, atol=1e-7)

    def test_small_tiles_short_circuit_to_exact(self):
        a = _lowrank_matrix(40, 40, 5, seed=1)
        exact = compress_block(a, TruncationRule(eps=1e-8))
        rand = compress_block(a, TruncationRule(eps=1e-8), backend="rsvd")
        # min(m, n) <= min_exact_dim: identical code path, identical result.
        np.testing.assert_array_equal(rand.u, exact.u)
        np.testing.assert_array_equal(rand.v, exact.v)

    def test_zero_matrix(self):
        tile = compress_block(
            np.zeros((128, 128)), TruncationRule(eps=1e-8), backend="rsvd"
        )
        assert tile.rank == 0

    def test_seed_reproducibility(self):
        a = _matern_tile(400, 100, 2, 0, seed=9)
        rule = TruncationRule(eps=1e-6)
        t1 = compress_block(a, rule, backend="rsvd", seed=42)
        t2 = compress_block(a, rule, backend="rsvd", seed=42)
        np.testing.assert_array_equal(t1.u, t2.u)
        np.testing.assert_array_equal(t1.v, t2.v)

    @pytest.mark.slow
    @settings(max_examples=10, deadline=None)
    @given(
        k=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_property_exactly_lowrank_inputs_recovered(self, k, seed):
        a = _lowrank_matrix(130, 110, k, seed=seed)
        rule = TruncationRule(eps=1e-8, relative=True)
        tile = compress_block(a, rule, backend="rsvd", seed=seed)
        assert tile.rank <= k
        err = np.linalg.norm(a - tile.to_dense(), 2)
        assert err <= 1e-6 * np.linalg.norm(a, 2)


class TestBackendRecompression:
    def test_matches_legacy_recompress(self):
        rng = np.random.default_rng(3)
        u = rng.standard_normal((80, 12))
        v = rng.standard_normal((80, 12))
        rule = TruncationRule(eps=1e-8)
        res_fn = recompress(u, v, rule, previous_rank=5)
        res_be = get_backend("svd").recompress(u, v, rule, previous_rank=5)
        np.testing.assert_array_equal(res_fn.tile.u, res_be.tile.u)
        assert res_fn.rank_before == res_be.rank_before == 12
        assert res_fn.grew and res_be.grew

    def test_rank_mismatch_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(CompressionError):
            recompress(
                rng.standard_normal((10, 3)),
                rng.standard_normal((10, 4)),
                TruncationRule(),
            )

    def test_recompress_update_equals_stacked_recompress(self):
        rng = np.random.default_rng(4)
        backend = SVDBackend()
        rule = TruncationRule(eps=1e-10)
        c = compress_block(_lowrank_matrix(60, 60, 6, seed=1), rule)
        u_upd = rng.standard_normal((60, 4))
        v_upd = rng.standard_normal((60, 4))
        res = backend.recompress_update(c, u_upd, v_upd, rule)
        ref = recompress(
            np.hstack([c.u, u_upd]),
            np.hstack([c.v, -v_upd]),
            rule,
            previous_rank=c.rank,
        )
        np.testing.assert_allclose(
            res.tile.to_dense(), ref.tile.to_dense(), atol=1e-12
        )
        assert res.rank_before == ref.rank_before
        assert res.rank_after == ref.rank_after

    def test_workspace_pool_is_reused(self):
        backend = SVDBackend()
        rule = TruncationRule(eps=1e-10)
        c = compress_block(_lowrank_matrix(60, 60, 6, seed=1), rule)
        rng = np.random.default_rng(5)
        for _ in range(5):  # same shapes -> free-list hits after round 1
            backend.recompress_update(
                c, rng.standard_normal((60, 4)), rng.standard_normal((60, 4)), rule
            )
        stats = backend.workspace_pool_stats
        assert stats is not None
        assert stats.reuses >= 8  # 2 buffers x 4 repeat rounds
        assert stats.outstanding_bytes == 0


class TestParallelMap:
    def test_preserves_order(self):
        out = parallel_map(lambda x: x * x, list(range(50)), n_workers=4)
        assert out == [x * x for x in range(50)]

    def test_serial_path(self):
        assert parallel_map(lambda x: x + 1, [1, 2, 3], n_workers=None) == [2, 3, 4]
        assert parallel_map(lambda x: x + 1, [], n_workers=8) == []

    def test_propagates_exceptions(self):
        def boom(x):
            if x == 3:
                raise ValueError("item 3")
            return x

        with pytest.raises(ValueError, match="item 3"):
            parallel_map(boom, list(range(8)), n_workers=3)


class TestParallelAssembly:
    @pytest.mark.parametrize("backend", ["svd", "rsvd"])
    def test_from_problem_bitwise_across_worker_counts(self, backend):
        problem = st_3d_exp_problem(600, 100, seed=2021)
        rule = TruncationRule(eps=1e-6)
        mats = [
            BandTLRMatrix.from_problem(
                problem, rule, band_size=2, backend=backend, n_workers=w
            )
            for w in (None, 2, 3)
        ]
        for other in mats[1:]:
            assert mats[0].tiles.keys() == other.tiles.keys()
            for ij, tile in mats[0].tiles.items():
                peer = other.tiles[ij]
                assert type(tile) is type(peer)
                np.testing.assert_array_equal(
                    tile.to_dense(), peer.to_dense(), err_msg=str(ij)
                )

    def test_from_dense_parallel_matches_serial(self):
        a = st_3d_exp_problem(512, 64, seed=3).dense()
        rule = TruncationRule(eps=1e-8)
        m1 = BandTLRMatrix.from_dense(a, 64, rule, band_size=1)
        m2 = BandTLRMatrix.from_dense(a, 64, rule, band_size=1, n_workers=4)
        for ij in m1.tiles:
            np.testing.assert_array_equal(
                m1.tiles[ij].to_dense(), m2.tiles[ij].to_dense()
            )

    def test_backend_survives_band_change_and_copy(self):
        problem = st_3d_exp_problem(600, 100, seed=1)
        rule = TruncationRule(eps=1e-6)
        mat = BandTLRMatrix.from_problem(problem, rule, backend="rsvd")
        assert mat.backend is get_backend("rsvd")
        widened = mat.with_band_size(2, problem)
        assert widened.backend is mat.backend
        assert mat.copy().backend is mat.backend

    def test_rsvd_factorization_stays_within_accuracy(self):
        problem = st_3d_exp_problem(600, 100, seed=2021)
        ref = problem.dense()
        rule = TruncationRule(eps=1e-6)
        mat = BandTLRMatrix.from_problem(
            problem, rule, band_size=2, backend="rsvd", n_workers=2
        )
        from repro.core import tlr_cholesky

        tlr_cholesky(mat)
        l = mat.to_dense(lower_only=True)
        err = np.linalg.norm(l @ l.T - ref) / np.linalg.norm(ref)
        assert err <= 1e-5

    def test_tile_seed_is_coordinate_stable(self):
        s1 = tile_seed(2021, 3, 1).generate_state(4)
        s2 = tile_seed(2021, 3, 1).generate_state(4)
        s3 = tile_seed(2021, 1, 3).generate_state(4)
        np.testing.assert_array_equal(s1, s2)
        assert not np.array_equal(s1, s3)


class TestCLI:
    def test_demo_with_rsvd(self, capsys):
        from repro.__main__ import main

        rc = main(
            [
                "demo",
                "--n",
                "256",
                "--tile",
                "64",
                "--accuracy",
                "1e-6",
                "--compression",
                "rsvd",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "[rsvd]" in out
        assert "solve relative error" in out
