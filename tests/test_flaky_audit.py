"""Static flakiness audit: seeds pinned, no cross-test RNG state.

A test suite is order-independent only if no test's random draws depend
on which tests ran before it.  Two patterns break that:

* an **unseeded** ``np.random.default_rng()`` (different draws every
  run — failures are unreproducible);
* a **shared** generator (module-/session-scope fixture or module
  global): generators are stateful, so each test's draws depend on the
  prior consumers, and the suite only passes in one collection order
  (``pytest -x -q --lf`` and random ordering both reorder collection).

These tests walk the ASTs of ``tests/`` and ``src/`` and reject both
patterns, plus the legacy global-state API (``np.random.seed`` /
module-level draw functions), which is shared state by construction.
The audit is static on purpose: it fails on the offending line the
moment the pattern is introduced, instead of as a once-a-month ordering
flake nobody can reproduce.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

TESTS_DIR = Path(__file__).parent
SRC_DIR = TESTS_DIR.parent / "src"


def _python_files(root: Path) -> list[Path]:
    return sorted(p for p in root.rglob("*.py") if "__pycache__" not in p.parts)


def _parsed(path: Path) -> ast.Module:
    return ast.parse(path.read_text(), filename=str(path))


def _is_call_to(node: ast.AST, *names: str) -> bool:
    """Whether ``node`` is a call whose dotted name ends with ``names``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    parts: list[str] = []
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
    dotted = ".".join(reversed(parts))
    return any(dotted == n or dotted.endswith("." + n) for n in names)


def _rng_calls(tree: ast.Module) -> list[ast.Call]:
    return [
        node
        for node in ast.walk(tree)
        if _is_call_to(node, "default_rng", "SeedSequence", "RandomState")
    ]


def _fixture_scope(func: ast.FunctionDef) -> str:
    """The pytest fixture scope of ``func``, or '' if not a fixture."""
    for dec in func.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if not _is_call_to(ast.Call(func=target, args=[], keywords=[]),
                           "fixture"):
            continue
        if isinstance(dec, ast.Call):
            for kw in dec.keywords:
                if kw.arg == "scope" and isinstance(kw.value, ast.Constant):
                    return str(kw.value.value)
        return "function"
    return ""


class TestSeedsPinned:
    def test_every_test_rng_is_seeded(self):
        """No ``default_rng()`` without an explicit seed in tests/."""
        offenders = []
        for path in _python_files(TESTS_DIR):
            for call in _rng_calls(_parsed(path)):
                if not call.args and not call.keywords:
                    offenders.append(f"{path.name}:{call.lineno}")
        assert not offenders, (
            "unseeded RNG constructions (pin a seed): " + ", ".join(offenders)
        )

    def test_every_src_rng_is_seeded(self):
        """Library RNGs must take their seed from the caller, never wall
        entropy — parallel assembly is bit-reproducible only then."""
        offenders = []
        for path in _python_files(SRC_DIR):
            for call in _rng_calls(_parsed(path)):
                if not call.args and not call.keywords:
                    offenders.append(
                        f"{path.relative_to(SRC_DIR)}:{call.lineno}"
                    )
        assert not offenders, (
            "unseeded RNG constructions in src/: " + ", ".join(offenders)
        )

    def test_no_legacy_global_rng_api(self):
        """``np.random.seed``/global draws are process-wide shared state."""
        banned = (
            "np.random.seed",
            "np.random.standard_normal",
            "np.random.rand",
            "np.random.randn",
            "np.random.uniform",
            "np.random.normal",
        )
        offenders = []
        for path in _python_files(TESTS_DIR) + _python_files(SRC_DIR):
            for node in ast.walk(_parsed(path)):
                if isinstance(node, ast.Call) and any(
                    _is_call_to(node, b) for b in banned
                ):
                    offenders.append(f"{path.name}:{node.lineno}")
        assert not offenders, (
            "legacy global-state RNG API used: " + ", ".join(offenders)
        )


class TestNoSharedGenerators:
    def test_no_module_or_session_scope_rng_fixture(self):
        """Fixtures *returning* a generator must be function-scoped.

        Generators are stateful; sharing one across tests makes each
        test's draws depend on collection order.  A seeded generator
        constructed and fully consumed *inside* a module-scope fixture
        (to build immutable data) is fine — the audit only rejects
        fixtures from which the generator escapes via return/yield.
        """
        offenders = []
        for path in _python_files(TESTS_DIR):
            tree = _parsed(path)
            for node in ast.walk(tree):
                if not isinstance(node, ast.FunctionDef):
                    continue
                scope = _fixture_scope(node)
                if scope in ("", "function"):
                    continue
                rng_names = {
                    t.id
                    for sub in ast.walk(node)
                    if isinstance(sub, ast.Assign)
                    and _is_call_to(sub.value, "default_rng", "RandomState")
                    for t in sub.targets
                    if isinstance(t, ast.Name)
                }
                escapes = False
                for sub in ast.walk(node):
                    if isinstance(sub, (ast.Return, ast.Yield)):
                        value = sub.value
                        if value is None:
                            continue
                        if _is_call_to(value, "default_rng", "RandomState"):
                            escapes = True
                        for name in ast.walk(value):
                            if (
                                isinstance(name, ast.Name)
                                and name.id in rng_names
                            ):
                                escapes = True
                if escapes:
                    offenders.append(
                        f"{path.name}:{node.lineno} ({node.name}, "
                        f"scope={scope})"
                    )
        assert not offenders, (
            "RNG fixtures must be function-scoped: " + ", ".join(offenders)
        )

    def test_no_module_level_rng_global(self):
        """No ``RNG = default_rng(...)`` at test-module top level."""
        offenders = []
        for path in _python_files(TESTS_DIR):
            for node in _parsed(path).body:
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    value = node.value
                    if value is not None and _is_call_to(
                        value, "default_rng", "RandomState"
                    ):
                        offenders.append(f"{path.name}:{node.lineno}")
        assert not offenders, (
            "module-level RNG globals in tests: " + ", ".join(offenders)
        )


class TestOrderIndependence:
    def test_conftest_rng_fixture_is_function_scoped(self):
        """Regression: the shared ``rng`` fixture used to be
        session-scoped, which made draw sequences collection-order
        dependent."""
        tree = _parsed(TESTS_DIR / "conftest.py")
        scopes = {
            node.name: _fixture_scope(node)
            for node in tree.body
            if isinstance(node, ast.FunctionDef) and _fixture_scope(node)
        }
        assert scopes.get("rng") == "function"

    def test_sample_draws_identical_across_orderings(self, rng):
        """The ``rng`` fixture's draws must not depend on prior tests."""
        import numpy as np

        expected = np.random.default_rng(2021).standard_normal(4)
        assert np.array_equal(rng.standard_normal(4), expected)

    @pytest.mark.parametrize("which", ["first", "second"])
    def test_rng_fixture_fresh_per_test(self, rng, which):
        """Both parametrizations see a *fresh* generator — if the
        fixture were cached across tests the second draw would differ."""
        import numpy as np

        expected = np.random.default_rng(2021).integers(0, 1_000_000, 8)
        assert np.array_equal(rng.integers(0, 1_000_000, 8), expected)

    def test_tile_seed_sequence_is_pinned(self):
        """src's only SeedSequence derives from (base, i, j), not wall
        entropy — same coordinates, same seed, any worker count."""
        from repro.linalg.backends import tile_seed

        a = tile_seed(42, 3, 5)
        b = tile_seed(42, 3, 5)
        assert a.entropy == b.entropy == 42
        assert a.spawn_key == b.spawn_key == (3, 5)
        import numpy as np

        ga = np.random.default_rng(a)
        gb = np.random.default_rng(b)
        assert np.array_equal(ga.standard_normal(16), gb.standard_normal(16))
