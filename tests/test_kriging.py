"""Unit tests for TLR-accelerated kriging."""

import numpy as np
import pytest

from repro import TruncationRule, st_3d_exp_problem
from repro.core import tlr_cholesky
from repro.core.kriging import krige
from repro.matrix import BandTLRMatrix
from repro.statistics import matern
from repro.geometry import block_distances
from repro.utils import ConfigurationError


@pytest.fixture(scope="module")
def setup():
    prob = st_3d_exp_problem(512, 64, seed=31, nugget=1e-4)
    z = prob.sample_measurements(seed=3)
    factor = BandTLRMatrix.from_problem(prob, TruncationRule(eps=1e-10), 2)
    tlr_cholesky(factor)
    rng = np.random.default_rng(4)
    targets = rng.uniform(0.1, 0.9, size=(40, 3))
    return prob, z, factor, targets


def dense_reference(prob, z, targets):
    a = prob.dense()
    cross = matern(block_distances(targets, prob.points), prob.params)
    inv_z = np.linalg.solve(a, z)
    mean = cross @ inv_z
    var = (
        prob.params.variance
        + prob.nugget
        - np.einsum("ij,ji->i", cross, np.linalg.solve(a, cross.T))
    )
    return mean, var


class TestAgainstDenseGP:
    def test_mean_matches(self, setup):
        prob, z, factor, targets = setup
        res = krige(prob, factor, z, targets)
        ref_mean, _ = dense_reference(prob, z, targets)
        np.testing.assert_allclose(res.mean, ref_mean, atol=1e-6)

    def test_variance_matches(self, setup):
        prob, z, factor, targets = setup
        res = krige(prob, factor, z, targets)
        _, ref_var = dense_reference(prob, z, targets)
        np.testing.assert_allclose(res.variance, ref_var, atol=1e-6)

    def test_batching_invariant(self, setup):
        prob, z, factor, targets = setup
        a = krige(prob, factor, z, targets, batch=7)
        b = krige(prob, factor, z, targets, batch=1000)
        np.testing.assert_allclose(a.mean, b.mean, atol=1e-12)
        np.testing.assert_allclose(a.variance, b.variance, atol=1e-12)


class TestStatisticalSanity:
    def test_prediction_at_observed_point_recovers_observation(self, setup):
        """With a tiny nugget, kriging at an observed location returns the
        observation with near-zero variance."""
        prob, z, factor, _ = setup
        res = krige(prob, factor, z, prob.points[:5])
        np.testing.assert_allclose(res.mean, z[:5], atol=1e-2)
        assert np.all(res.variance < 1e-2)

    def test_far_targets_revert_to_prior(self, setup):
        """Far from all observations the prediction reverts to the prior:
        mean ~ 0, variance ~ sigma²."""
        prob, z, factor, _ = setup
        far = np.array([[50.0, 50.0, 50.0]])
        res = krige(prob, factor, z, far)
        assert abs(res.mean[0]) < 1e-6
        assert res.variance[0] == pytest.approx(
            prob.params.variance + prob.nugget, rel=1e-6
        )

    def test_variance_nonnegative(self, setup):
        prob, z, factor, targets = setup
        res = krige(prob, factor, z, targets)
        assert np.all(res.variance >= 0.0)


class TestValidation:
    def test_bad_z_length(self, setup):
        prob, _, factor, targets = setup
        with pytest.raises(ConfigurationError):
            krige(prob, factor, np.zeros(5), targets)

    def test_bad_target_dim(self, setup):
        prob, z, factor, _ = setup
        with pytest.raises(ConfigurationError):
            krige(prob, factor, z, np.zeros((4, 2)))

    def test_bad_batch(self, setup):
        prob, z, factor, targets = setup
        with pytest.raises(ConfigurationError):
            krige(prob, factor, z, targets, batch=0)
