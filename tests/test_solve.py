"""Unit tests for TLR triangular solves, SPD solve, and log-determinant."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.matrix import BandTLRMatrix
from repro.core import backward_solve, forward_solve, log_det, solve_spd, tlr_cholesky
from repro.utils import ConfigurationError


@pytest.fixture(scope="module")
def factored(small_problem_mod, rule8_mod):
    m = BandTLRMatrix.from_problem(small_problem_mod, rule8_mod, band_size=2)
    tlr_cholesky(m)
    return m


@pytest.fixture(scope="module")
def small_problem_mod():
    from repro import st_3d_exp_problem

    return st_3d_exp_problem(512, 64, seed=42)


@pytest.fixture(scope="module")
def rule8_mod():
    from repro import TruncationRule

    return TruncationRule(eps=1e-8)


@pytest.fixture(scope="module")
def dense_l(factored):
    return factored.to_dense(lower_only=True)


class TestForwardSolve:
    def test_matches_dense(self, factored, dense_l, rng):
        b = rng.standard_normal(512)
        y = forward_solve(factored, b)
        ref = sla.solve_triangular(dense_l, b, lower=True)
        np.testing.assert_allclose(y, ref, atol=1e-8)

    def test_multirhs(self, factored, dense_l, rng):
        b = rng.standard_normal((512, 3))
        y = forward_solve(factored, b)
        ref = sla.solve_triangular(dense_l, b, lower=True)
        assert y.shape == (512, 3)
        np.testing.assert_allclose(y, ref, atol=1e-8)

    def test_does_not_mutate_rhs(self, factored, rng):
        b = rng.standard_normal(512)
        b0 = b.copy()
        forward_solve(factored, b)
        np.testing.assert_array_equal(b, b0)

    def test_wrong_length_rejected(self, factored):
        with pytest.raises(ConfigurationError):
            forward_solve(factored, np.zeros(100))


class TestBackwardSolve:
    def test_matches_dense(self, factored, dense_l, rng):
        b = rng.standard_normal(512)
        x = backward_solve(factored, b)
        ref = sla.solve_triangular(dense_l, b, lower=True, trans="T")
        np.testing.assert_allclose(x, ref, atol=1e-8)


class TestSolveSpd:
    def test_residual_small(self, factored, small_problem_mod, rng):
        a = small_problem_mod.dense()
        x_true = rng.standard_normal(512)
        b = a @ x_true
        x = solve_spd(factored, b)
        assert np.linalg.norm(x - x_true) / np.linalg.norm(x_true) < 1e-6

    def test_solution_accuracy_order_of_paper(self, small_problem_mod, rng):
        """Section VIII-A: eps=1e-8 compression yields ~1e-9 solution error."""
        from repro import TruncationRule

        a = small_problem_mod.dense()
        m = BandTLRMatrix.from_problem(
            small_problem_mod, TruncationRule(eps=1e-8), band_size=1
        )
        tlr_cholesky(m)
        x_true = rng.standard_normal(512)
        x = solve_spd(m, a @ x_true)
        err = np.linalg.norm(x - x_true) / np.linalg.norm(x_true)
        assert err < 1e-7


class TestLogDet:
    def test_matches_dense(self, factored, small_problem_mod):
        a = small_problem_mod.dense()
        sign, ref = np.linalg.slogdet(a)
        assert sign > 0
        assert log_det(factored) == pytest.approx(ref, abs=1e-6)

    def test_unfactorized_negative_diag_rejected(self, small_problem_mod, rule8_mod):
        m = BandTLRMatrix.from_problem(small_problem_mod, rule8_mod, band_size=1)
        m.tile(0, 0).data[0, 0] = -1.0
        with pytest.raises(ConfigurationError):
            log_det(m)
