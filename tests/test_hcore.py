"""Unit tests for the ten HCORE (region)-kernels against dense references."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.linalg import (
    DenseTile,
    FlopCounter,
    KernelClass,
    LowRankTile,
    TruncationRule,
    compress_block,
    gemm_auto,
    gemm_dense,
    gemm_dense_lrd,
    gemm_dense_lrlr,
    gemm_lr,
    gemm_lr_dense,
    potrf_dense,
    syrk_dense,
    syrk_lr,
    trsm_dense,
    trsm_lr,
)
from repro.utils import KernelError, NotPositiveDefiniteError

RULE = TruncationRule(eps=1e-10, relative=True)
B = 32


@pytest.fixture()
def rng():
    return np.random.default_rng(11)


def spd(rng, n=B):
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


def lowrank(rng, m=B, n=B, k=4):
    a = rng.standard_normal((m, k)) @ rng.standard_normal((k, n))
    return compress_block(a, RULE), a


class TestPotrf:
    def test_matches_lapack(self, rng):
        a = spd(rng)
        t = DenseTile(a.copy())
        potrf_dense(t)
        np.testing.assert_allclose(t.data, np.tril(sla.cholesky(a, lower=True)))

    def test_zeroes_upper_triangle(self, rng):
        t = DenseTile(spd(rng))
        potrf_dense(t)
        assert np.all(np.triu(t.data, 1) == 0.0)

    def test_raises_on_indefinite(self):
        t = DenseTile(-np.eye(4))
        with pytest.raises(NotPositiveDefiniteError) as ei:
            potrf_dense(t, tile_index=(2, 2))
        assert ei.value.tile_index == (2, 2)

    def test_counts_flops(self, rng):
        c = FlopCounter()
        potrf_dense(DenseTile(spd(rng)), counter=c)
        assert c.per_class[KernelClass.POTRF_DENSE] == pytest.approx(B**3 / 3)


class TestTrsm:
    def test_dense_matches_reference(self, rng):
        l = np.tril(sla.cholesky(spd(rng), lower=True))
        c = rng.standard_normal((B, B))
        t = DenseTile(c.copy())
        trsm_dense(DenseTile(l), t)
        np.testing.assert_allclose(t.data, c @ np.linalg.inv(l).T, atol=1e-8)

    def test_lr_matches_dense_expansion(self, rng):
        l = np.tril(sla.cholesky(spd(rng), lower=True))
        t, a = lowrank(rng)
        out = trsm_lr(DenseTile(l), t)
        np.testing.assert_allclose(out.to_dense(), a @ np.linalg.inv(l).T, atol=1e-8)

    def test_lr_preserves_rank(self, rng):
        l = np.tril(sla.cholesky(spd(rng), lower=True))
        t, _ = lowrank(rng, k=5)
        assert trsm_lr(DenseTile(l), t).rank == 5

    def test_lr_zero_rank_passthrough(self, rng):
        l = np.tril(sla.cholesky(spd(rng), lower=True))
        t = LowRankTile.zero(B, B)
        assert trsm_lr(DenseTile(l), t).rank == 0

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(KernelError):
            trsm_dense(DenseTile(np.eye(4)), DenseTile(np.zeros((4, 5))))


class TestSyrk:
    def test_dense(self, rng):
        a = rng.standard_normal((B, B))
        c0 = spd(rng)
        t = DenseTile(c0.copy())
        syrk_dense(DenseTile(a), t)
        np.testing.assert_allclose(t.data, c0 - a @ a.T, atol=1e-10)

    def test_lr_matches_expansion(self, rng):
        t, a = lowrank(rng)
        c0 = spd(rng)
        c = DenseTile(c0.copy())
        syrk_lr(t, c)
        np.testing.assert_allclose(c.data, c0 - a @ a.T, atol=1e-8)

    def test_lr_keeps_symmetry(self, rng):
        t, _ = lowrank(rng)
        c = DenseTile(spd(rng))
        syrk_lr(t, c)
        np.testing.assert_allclose(c.data, c.data.T, atol=1e-10)

    def test_zero_rank_noop(self, rng):
        c0 = spd(rng)
        c = DenseTile(c0.copy())
        syrk_lr(LowRankTile.zero(B, B), c)
        np.testing.assert_array_equal(c.data, c0)


class TestGemmDenseOutputs:
    def test_gemm_dense(self, rng):
        a, b = rng.standard_normal((B, B)), rng.standard_normal((B, B))
        c0 = rng.standard_normal((B, B))
        c = DenseTile(c0.copy())
        gemm_dense(DenseTile(a), DenseTile(b), c)
        np.testing.assert_allclose(c.data, c0 - a @ b.T, atol=1e-10)

    def test_gemm_lrd_a_lowrank(self, rng):
        ta, a = lowrank(rng)
        b = rng.standard_normal((B, B))
        c0 = rng.standard_normal((B, B))
        c = DenseTile(c0.copy())
        gemm_dense_lrd(ta, DenseTile(b), c)
        np.testing.assert_allclose(c.data, c0 - a @ b.T, atol=1e-8)

    def test_gemm_lrd_b_lowrank(self, rng):
        a = rng.standard_normal((B, B))
        tb, b = lowrank(rng)
        c0 = rng.standard_normal((B, B))
        c = DenseTile(c0.copy())
        gemm_dense_lrd(DenseTile(a), tb, c)
        np.testing.assert_allclose(c.data, c0 - a @ b.T, atol=1e-8)

    def test_gemm_lrd_rejects_two_lowrank(self, rng):
        ta, _ = lowrank(rng)
        tb, _ = lowrank(rng)
        with pytest.raises(KernelError):
            gemm_dense_lrd(ta, tb, DenseTile(np.zeros((B, B))))

    def test_gemm_lrlr(self, rng):
        ta, a = lowrank(rng, k=3)
        tb, b = lowrank(rng, k=5)
        c0 = rng.standard_normal((B, B))
        c = DenseTile(c0.copy())
        gemm_dense_lrlr(ta, tb, c)
        np.testing.assert_allclose(c.data, c0 - a @ b.T, atol=1e-8)


class TestGemmLowRankOutputs:
    def test_gemm_lr_dense(self, rng):
        ta, a = lowrank(rng, k=3)
        b = rng.standard_normal((B, B))
        tc, c0 = lowrank(rng, k=4)
        out, res = gemm_lr_dense(ta, DenseTile(b), tc, RULE)
        np.testing.assert_allclose(out.to_dense(), c0 - a @ b.T, atol=1e-7)
        assert res.rank_before == 3 + 4

    def test_gemm_lr(self, rng):
        ta, a = lowrank(rng, k=3)
        tb, b = lowrank(rng, k=2)
        tc, c0 = lowrank(rng, k=4)
        out, res = gemm_lr(ta, tb, tc, RULE)
        np.testing.assert_allclose(out.to_dense(), c0 - a @ b.T, atol=1e-7)
        # Update rank bounded by k_b, so stacked rank is 4 + 2.
        assert res.rank_before == 6

    def test_gemm_lr_growth_flag(self, rng):
        ta, _ = lowrank(rng, k=3)
        tb, _ = lowrank(rng, k=3)
        tc, _ = lowrank(rng, k=1)
        _, res = gemm_lr(ta, tb, tc, RULE)
        assert res.grew  # rank must exceed the previous rank 1

    def test_gemm_lr_zero_rank_operands(self, rng):
        tc, c0 = lowrank(rng, k=4)
        out, res = gemm_lr(LowRankTile.zero(B, B), LowRankTile.zero(B, B), tc, RULE)
        np.testing.assert_allclose(out.to_dense(), c0, atol=1e-8)
        assert not res.grew


class TestGemmAuto:
    def test_dispatch_all_dense(self, rng):
        c, _, recomp = gemm_auto(
            DenseTile(rng.standard_normal((B, B))),
            DenseTile(rng.standard_normal((B, B))),
            DenseTile(rng.standard_normal((B, B))),
            RULE,
        )
        assert recomp is None
        assert isinstance(c, DenseTile)

    @pytest.mark.parametrize(
        "a_lr,b_lr,expected",
        [
            (False, False, KernelClass.GEMM_DENSE),
            (True, False, KernelClass.GEMM_DENSE_LRD),
            (False, True, KernelClass.GEMM_DENSE_LRD),
            (True, True, KernelClass.GEMM_DENSE_LRLR),
        ],
    )
    def test_dense_c_dispatch(self, rng, a_lr, b_lr, expected):
        mk = lambda lr: lowrank(rng)[0] if lr else DenseTile(rng.standard_normal((B, B)))
        _, kind, _ = gemm_auto(mk(a_lr), mk(b_lr), DenseTile(np.zeros((B, B))), RULE)
        assert kind is expected

    @pytest.mark.parametrize(
        "a_lr,b_lr,expected",
        [
            (True, False, KernelClass.GEMM_LR_DENSE),
            (False, True, KernelClass.GEMM_LR_DENSE),
            (True, True, KernelClass.GEMM_LR),
        ],
    )
    def test_lr_c_dispatch(self, rng, a_lr, b_lr, expected):
        mk = lambda lr: lowrank(rng)[0] if lr else DenseTile(rng.standard_normal((B, B)))
        _, kind, recomp = gemm_auto(mk(a_lr), mk(b_lr), lowrank(rng)[0], RULE)
        assert kind is expected
        assert recomp is not None

    def test_lr_c_dense_ab_rejected(self, rng):
        with pytest.raises(KernelError):
            gemm_auto(
                DenseTile(np.eye(B)),
                DenseTile(np.eye(B)),
                LowRankTile.zero(B, B),
                RULE,
            )

    def test_mirror_case_numerics(self, rng):
        """A dense, B low-rank, C low-rank (upper-triangular variants)."""
        a = rng.standard_normal((B, B))
        tb, b = lowrank(rng, k=3)
        tc, c0 = lowrank(rng, k=2)
        out, kind, _ = gemm_auto(DenseTile(a), tb, tc, RULE)
        assert kind is KernelClass.GEMM_LR_DENSE
        np.testing.assert_allclose(out.to_dense(), c0 - a @ b.T, atol=1e-7)
