"""Unit tests for TileDescriptor geometry and band predicates."""

import pytest

from repro.matrix import TileDescriptor
from repro.utils import ConfigurationError


class TestGeometry:
    def test_even_tiling(self):
        d = TileDescriptor(512, 64)
        assert d.ntiles == 8
        assert d.tile_dim(0) == 64
        assert d.tile_dim(7) == 64

    def test_ragged_last_tile(self):
        d = TileDescriptor(500, 64)
        assert d.ntiles == 8
        assert d.tile_dim(7) == 500 - 7 * 64
        assert d.tile_shape(7, 0) == (52, 64)

    def test_tile_slice(self):
        d = TileDescriptor(500, 64)
        s = d.tile_slice(7)
        assert (s.start, s.stop) == (448, 500)

    def test_rejects_oversized_tile(self):
        with pytest.raises(ConfigurationError):
            TileDescriptor(10, 20)

    def test_index_out_of_range(self):
        with pytest.raises(ConfigurationError):
            TileDescriptor(100, 10).tile_dim(10)


class TestBandPredicates:
    def test_band_id(self):
        assert TileDescriptor.band_id(3, 3) == 1
        assert TileDescriptor.band_id(4, 3) == 2
        assert TileDescriptor.band_id(3, 4) == 2  # symmetric

    @pytest.mark.parametrize(
        "i,j,band,expected",
        [(0, 0, 1, True), (1, 0, 1, False), (1, 0, 2, True), (5, 2, 3, False),
         (5, 3, 3, True)],
    )
    def test_on_band(self, i, j, band, expected):
        assert TileDescriptor.on_band(i, j, band) is expected


class TestIteration:
    def test_lower_tiles_count(self):
        d = TileDescriptor(512, 64)
        tiles = list(d.lower_tiles())
        assert len(tiles) == 8 * 9 // 2
        assert all(i >= j for i, j in tiles)

    def test_subdiagonal_tiles(self):
        d = TileDescriptor(512, 64)
        sd = list(d.subdiagonal_tiles(2))
        assert sd == [(2, 0), (3, 1), (4, 2), (5, 3), (6, 4), (7, 5)]

    def test_subdiagonal_out_of_range(self):
        with pytest.raises(ConfigurationError):
            list(TileDescriptor(512, 64).subdiagonal_tiles(8))

    def test_band_counts_partition(self):
        d = TileDescriptor(512, 64)
        total = d.ntiles * (d.ntiles + 1) // 2
        for band in (1, 3, 8, 20):
            assert d.count_on_band(band) + d.count_off_band(band) == total

    def test_count_on_band_values(self):
        d = TileDescriptor(512, 64)
        assert d.count_on_band(1) == 8
        assert d.count_on_band(2) == 8 + 7
        assert d.count_on_band(100) == 36
