"""Unit tests for the same-shape kernel batching layer.

The hard invariant throughout: batched execution is *bitwise identical*
to unbatched execution — same factor, same flop totals, for every
executor and worker count.  Grouping is a dispatch optimisation, never a
numerical one.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TruncationRule, st_3d_exp_problem
from repro.core import tlr_cholesky
from repro.linalg import (
    BatchItem,
    BatchPlanner,
    DenseTile,
    LowRankTile,
    run_batch,
)
from repro.linalg.backends import (
    SVDBackend,
    _qr_svd_recompress,
    _qr_svd_recompress_reference,
)
from repro.matrix import BandTLRMatrix
from repro.utils import ConfigurationError, KernelError


@pytest.fixture(scope="module")
def problem():
    return st_3d_exp_problem(800, 100, seed=3)


@pytest.fixture(scope="module")
def rule():
    return TruncationRule(eps=1e-4)


def build(problem, rule, precision=None, band=2):
    return BandTLRMatrix.from_problem(
        problem, rule, band, backend="auto", precision=precision
    )


def factors_equal(m1, m2):
    """Bitwise tile-by-tile equality of two factorized matrices."""
    if m1.ntiles != m2.ntiles:
        return False
    for i in range(m1.ntiles):
        for j in range(i + 1):
            t1, t2 = m1.tile(i, j), m2.tile(i, j)
            if isinstance(t1, DenseTile) != isinstance(t2, DenseTile):
                return False
            if isinstance(t1, DenseTile):
                if not np.array_equal(t1.data, t2.data):
                    return False
            elif not (
                np.array_equal(t1.u, t2.u) and np.array_equal(t1.v, t2.v)
            ):
                return False
    return True


class TestPlanner:
    def _lr_item(self, ref, m=40, k=4, seed=0):
        rng = np.random.default_rng(seed)
        a = LowRankTile(
            rng.standard_normal((m, k)), rng.standard_normal((m, k))
        )
        c = DenseTile(rng.standard_normal((m, m)))
        return BatchItem(ref, "syrk", (a, c))

    def test_same_shape_items_grouped(self):
        planner = BatchPlanner()
        items = [self._lr_item(i, seed=i) for i in range(5)]
        groups = planner.partition(items)
        assert len(groups) == 1 and len(groups[0]) == 5

    def test_mixed_ranks_split(self):
        planner = BatchPlanner()
        items = [self._lr_item(0, k=3), self._lr_item(1, k=5)]
        groups = planner.partition(items)
        assert all(len(g) == 1 for g in groups)

    def test_potrf_never_batched(self):
        planner = BatchPlanner()
        c = DenseTile(np.eye(8))
        items = [BatchItem(i, "potrf", (c,)) for i in range(4)]
        assert all(len(g) == 1 for g in planner.partition(items))

    def test_lowrank_gemm_destination_runs_solo(self):
        rng = np.random.default_rng(7)
        planner = BatchPlanner()
        a = LowRankTile(rng.standard_normal((20, 2)), rng.standard_normal((20, 2)))
        c = LowRankTile(rng.standard_normal((20, 2)), rng.standard_normal((20, 2)))
        item = BatchItem(0, "gemm", (a, a, c))
        assert planner.key(item) is None

    def test_max_batch_chunks(self):
        planner = BatchPlanner(max_batch=4)
        items = [self._lr_item(i, seed=i) for i in range(10)]
        groups = planner.partition(items)
        assert [len(g) for g in groups] == [4, 4, 2]

    def test_copy_bytes_cap_dissolves_dense_buckets(self):
        rng = np.random.default_rng(9)
        small = BatchPlanner(max_copy_bytes=100)
        a = DenseTile(rng.standard_normal((40, 40)))
        c = DenseTile(rng.standard_normal((40, 40)))
        items = [BatchItem(i, "syrk", (a, c)) for i in range(4)]
        assert all(len(g) == 1 for g in small.partition(items))
        big = BatchPlanner(max_copy_bytes=1 << 20)
        assert [len(g) for g in big.partition(items)] == [4]

    def test_rejects_bad_bounds(self):
        with pytest.raises(KernelError):
            BatchPlanner(min_batch=1)
        with pytest.raises(KernelError):
            BatchPlanner(min_batch=4, max_batch=2)


class TestStackedKernelsMatchSolo:
    """Each stacked formulation is bitwise the per-tile kernel."""

    @staticmethod
    def _run_both(make_items, rule):
        solo_items = make_items()
        batch_items = make_items()
        for item in solo_items:
            run_batch([item], rule)
        planner = BatchPlanner(max_copy_bytes=1 << 30)
        groups = planner.partition(batch_items)
        assert any(len(g) > 1 for g in groups)
        outs = {}
        for group in groups:
            for res in run_batch(group, rule):
                outs[res.ref] = res.out
        return solo_items, batch_items, outs

    def test_syrk_lr(self, rule):
        def make():
            rng = np.random.default_rng(11)
            items = []
            for i in range(4):
                a = LowRankTile(
                    rng.standard_normal((32, 3)), rng.standard_normal((32, 3))
                )
                c = DenseTile(rng.standard_normal((32, 32)))
                items.append(BatchItem(i, "syrk", (a, c)))
            return items

        solo, batched, _ = self._run_both(make, rule)
        for s, b in zip(solo, batched):
            np.testing.assert_array_equal(s.tiles[1].data, b.tiles[1].data)

    def test_trsm_lr(self, rule):
        def make():
            rng = np.random.default_rng(12)
            l_full = rng.standard_normal((32, 32))
            l_tile = DenseTile(
                np.tril(l_full) + 32 * np.eye(32)
            )
            items = []
            for i in range(4):
                c = LowRankTile(
                    rng.standard_normal((32, 3)), rng.standard_normal((32, 3))
                )
                items.append(BatchItem(i, "trsm", (l_tile, c)))
            return items

        solo_items = make()
        solo_outs = {
            item.ref: run_batch([item], rule)[0].out for item in solo_items
        }
        batch_items = make()
        planner = BatchPlanner(max_copy_bytes=1 << 30)
        (group,) = planner.partition(batch_items)
        assert len(group) == 4
        for res in run_batch(group, rule):
            np.testing.assert_array_equal(res.out.u, solo_outs[res.ref].u)
            np.testing.assert_array_equal(res.out.v, solo_outs[res.ref].v)

    def test_gemm_dense_lrlr(self, rule):
        def make():
            rng = np.random.default_rng(13)
            items = []
            for i in range(3):
                a = LowRankTile(
                    rng.standard_normal((32, 2)), rng.standard_normal((32, 2))
                )
                b = LowRankTile(
                    rng.standard_normal((32, 2)), rng.standard_normal((32, 2))
                )
                c = DenseTile(rng.standard_normal((32, 32)))
                items.append(BatchItem(i, "gemm", (a, b, c)))
            return items

        solo, batched, _ = self._run_both(make, rule)
        for s, b in zip(solo, batched):
            np.testing.assert_array_equal(s.tiles[2].data, b.tiles[2].data)

    @settings(max_examples=15, deadline=None)
    @given(
        m=st.integers(min_value=8, max_value=48),
        k=st.integers(min_value=1, max_value=6),
        count=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_syrk_lr_property(self, m, k, count, seed):
        rule = TruncationRule(eps=1e-6)

        def make():
            rng = np.random.default_rng(seed)
            items = []
            for i in range(count):
                a = LowRankTile(
                    rng.standard_normal((m, k)), rng.standard_normal((m, k))
                )
                c = DenseTile(rng.standard_normal((m, m)))
                items.append(BatchItem(i, "syrk", (a, c)))
            return items

        solo = make()
        for item in solo:
            run_batch([item], rule)
        batched = make()
        (group,) = BatchPlanner(max_copy_bytes=1 << 30).partition(batched)
        run_batch(group, rule)
        for s, b in zip(solo, batched):
            np.testing.assert_array_equal(s.tiles[1].data, b.tiles[1].data)


class TestFactorizationBitwise:
    @pytest.mark.parametrize("precision", [None, "adaptive"])
    def test_sequential_batched_matches_unbatched(
        self, problem, rule, precision
    ):
        m1 = build(problem, rule, precision)
        r1 = tlr_cholesky(m1, batch=True, precision=precision)
        m2 = build(problem, rule, precision)
        r2 = tlr_cholesky(m2, batch=False, precision=precision)
        assert factors_equal(m1, m2)
        assert r1.counter.total == r2.counter.total
        assert r1.rank_growth_events == r2.rank_growth_events
        assert r1.max_rank_seen == r2.max_rank_seen

    @pytest.mark.parametrize("n_workers", [1, 2, 3])
    def test_parallel_batched_matches_sequential(
        self, problem, rule, n_workers
    ):
        m1 = build(problem, rule, "adaptive")
        tlr_cholesky(m1, batch=False, precision="adaptive")
        m2 = build(problem, rule, "adaptive")
        tlr_cholesky(
            m2, batch=True, precision="adaptive", n_workers=n_workers
        )
        assert factors_equal(m1, m2)

    def test_graph_executor_batched(self, problem, rule):
        m1 = build(problem, rule)
        tlr_cholesky(m1)
        m2 = build(problem, rule)
        tlr_cholesky(m2, batch=True, executor="sequential")
        assert factors_equal(m1, m2)

    def test_batch_with_adaptive_threshold_rejected(self, problem, rule):
        m = build(problem, rule)
        with pytest.raises(ConfigurationError):
            tlr_cholesky(m, batch=True, adaptive_threshold=0.5)

    def test_processes_executor_rejects_batch(self, problem, rule):
        m = build(problem, rule)
        with pytest.raises(ConfigurationError):
            tlr_cholesky(m, batch=True, executor="processes", n_ranks=2)

    def test_flop_attribution_preserved(self, problem, rule):
        m1 = build(problem, rule)
        r1 = tlr_cholesky(m1, batch=True)
        m2 = build(problem, rule)
        r2 = tlr_cholesky(m2)
        assert r1.counter.per_class == r2.counter.per_class
        assert r1.counter.per_class_count == r2.counter.per_class_count


class TestReferenceRounding:
    """The direct-LAPACK rounding is bitwise the scipy-wrapper one."""

    @pytest.mark.parametrize(
        "m,r", [(100, 35), (100, 12), (30, 45), (64, 20)]
    )
    def test_single_call_bitwise(self, m, r):
        rng = np.random.default_rng(21)
        rule = TruncationRule(eps=1e-4)
        u = np.asfortranarray(rng.standard_normal((m, r)))
        v = np.asfortranarray(rng.standard_normal((m, r)))
        a = _qr_svd_recompress(u.copy(order="F"), v.copy(order="F"), rule, None)
        b = _qr_svd_recompress_reference(
            u.copy(order="F"), v.copy(order="F"), rule, None
        )
        assert a.rank_after == b.rank_after
        np.testing.assert_array_equal(a.tile.u, b.tile.u)
        np.testing.assert_array_equal(a.tile.v, b.tile.v)

    def test_end_to_end_bitwise(self, problem, rule):
        ref_backend = SVDBackend()
        ref_backend.reference_recompress = True
        m1 = BandTLRMatrix.from_problem(problem, rule, 2, backend=ref_backend)
        tlr_cholesky(m1, backend=ref_backend)
        m2 = BandTLRMatrix.from_problem(problem, rule, 2, backend="svd")
        tlr_cholesky(m2)
        assert factors_equal(m1, m2)
