"""The live monitoring plane: aggregator, SLOs, HTTP endpoints, top.

The hammer tests pin the two accounting invariants the hot path relies
on: with big-enough rings **no increment is ever lost**, and when rings
do overflow the drop counter is **monotone and exact** — events are
either folded or counted as dropped, never silently gone.
"""

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    LiveAggregator,
    MonitoringServer,
    Slo,
    parse_prometheus_text,
    parse_slo,
    render_top,
    run_top,
    snapshot_prometheus_text,
)


def _get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=5.0) as r:
            return r.status, r.read().decode(), dict(r.headers)
    except urllib.error.HTTPError as e:
        return e.code, e.read().decode(), dict(e.headers)


@pytest.fixture()
def live():
    agg = LiveAggregator(tick_s=0.01)
    yield agg
    agg.stop()


# ----------------------------------------------------------------------
# Aggregator accounting
# ----------------------------------------------------------------------
class TestAggregator:
    def test_thread_hammer_no_lost_increments(self, live):
        """8 threads x 2000 events through per-thread rings: every
        increment must land in the folded totals (rings are large
        enough that nothing may drop)."""
        threads_n, per_thread = 8, 2000
        live.start()

        def work(tid):
            for i in range(per_thread):
                live.emit_counter("hits")
                live.emit_latency("lat_s", 0.001 * (1 + i % 5))
                if i % 64 == 0:
                    live.force_collect()  # drain concurrently with pushes

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        live.stop()  # final force_collect drains the residual rings
        snap = live.snapshot()
        assert snap["dropped_events"] == 0
        assert snap["counters"]["hits"] == threads_n * per_thread
        assert snap["latency"]["lat_s"]["count"] == threads_n * per_thread

    def test_overflow_drops_are_counted_and_monotone(self):
        agg = LiveAggregator(ring_capacity=4)
        for _ in range(100):
            agg.emit_counter("c")
        agg.force_collect()
        first = agg.snapshot()
        # 4 folded, 96 dropped — conservation across fold + drop
        assert first["counters"]["c"] == 4
        assert first["dropped_events"] == 96
        for _ in range(50):
            agg.emit_counter("c")
        agg.force_collect()
        second = agg.snapshot()
        assert second["dropped_events"] >= first["dropped_events"]
        assert (second["counters"]["c"] + second["dropped_events"]) == 150

    def test_gauge_last_write_wins(self, live):
        live.emit_gauge("depth", 3.0)
        live.emit_gauge("depth", 7.0)
        live.force_collect()
        assert live.snapshot()["gauges"]["depth"] == 7.0

    def test_latency_percentiles_in_snapshot(self, live):
        for ms in range(1, 101):
            live.emit_latency("svc", ms / 1e3)
        live.force_collect()
        lat = live.snapshot()["latency"]["svc"]
        assert lat["count"] == 100
        assert lat["p50"] == pytest.approx(0.050, rel=0.02)
        assert lat["p99"] == pytest.approx(0.099, rel=0.02)
        assert lat["min"] == pytest.approx(0.001)
        assert lat["max"] == pytest.approx(0.100)

    def test_window_rates(self, live):
        import time

        live.force_collect()  # window base
        for _ in range(10):
            live.emit_counter("req")
        time.sleep(0.02)  # a measurable window span
        live.force_collect()
        snap = live.snapshot()
        assert snap["window_s"] > 0
        assert snap["rates"]["req"] > 0

    def test_provider_polled_and_errors_contained(self, live):
        live.register_provider("cache", lambda: {"hits": 5})
        live.register_provider("bad", lambda: 1 / 0)
        snap = live.snapshot()
        assert snap["providers"]["cache"] == {"hits": 5}
        assert "error" in snap["providers"]["bad"]

    def test_emit_before_start_and_after_stop_safe(self):
        agg = LiveAggregator()
        agg.emit_counter("early")
        agg.start()
        agg.stop()
        agg.emit_counter("late")
        agg.force_collect()
        snap = agg.snapshot()
        assert snap["counters"] == {"early": 1.0, "late": 1.0}


# ----------------------------------------------------------------------
# SLO parsing and evaluation
# ----------------------------------------------------------------------
class TestSlo:
    def test_parse_full_spec(self):
        slo = parse_slo("error-rate=0.01, p99-ms=50, window=30")
        assert slo.error_rate == 0.01
        assert slo.p99_ms == 50.0
        assert slo.window_s == 30.0

    @pytest.mark.parametrize("bad", ["latency=1", "p99-ms", "error-rate=x"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_slo(bad)

    def _snap(self, errors, requests, p99_s):
        return {
            "window_s": 10.0,
            "rates": {
                "service_request_failed": errors / 10.0,
                "service_request_submitted": requests / 10.0,
            },
            "latency": {"service_latency_s": {"p99": p99_s}},
        }

    def test_burn_rate_thresholds(self):
        slo = Slo(error_rate=0.01)
        ok = slo.evaluate(self._snap(1, 100, 0.0))        # burn 1.0
        degraded = slo.evaluate(self._snap(2, 100, 0.0))  # burn 2.0
        failing = slo.evaluate(self._snap(5, 100, 0.0))   # burn 5.0
        assert ok["status"] == "ok"
        assert degraded["status"] == "degraded"
        assert failing["status"] == "failing"
        assert failing["checks"]["error_rate"]["burn_rate"] == pytest.approx(5.0)

    def test_p99_term(self):
        slo = Slo(p99_ms=50.0)
        assert slo.evaluate(self._snap(0, 1, 0.040))["status"] == "ok"
        assert slo.evaluate(self._snap(0, 1, 0.080))["status"] == "degraded"
        assert slo.evaluate(self._snap(0, 1, 0.500))["status"] == "failing"

    def test_worst_term_wins(self):
        slo = Slo(error_rate=0.01, p99_ms=50.0)
        out = slo.evaluate(self._snap(9, 100, 0.040))
        assert out["status"] == "failing"
        assert out["checks"]["p99_ms"]["status"] == "ok"

    def test_no_traffic_is_ok(self):
        slo = Slo(error_rate=0.01, p99_ms=50.0)
        assert slo.evaluate({"rates": {}, "latency": {}})["status"] == "ok"

    def test_aggregator_health_uses_slo(self):
        agg = LiveAggregator(slo=Slo(error_rate=0.01))
        assert agg.health()["status"] == "ok"
        agg_none = LiveAggregator()
        health = agg_none.health()
        assert health["status"] == "ok" and "note" in health


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
class TestPrometheus:
    def _snapshot(self):
        agg = LiveAggregator()
        agg.emit_counter("service_request_completed", 3)
        agg.emit_gauge("service_queue_depth", 2)
        for ms in (1, 2, 3):
            agg.emit_latency("service_latency_s", ms / 1e3)
        agg.force_collect()
        return agg.snapshot()

    def test_exposition_parses_and_round_trips(self):
        text = snapshot_prometheus_text(self._snapshot())
        samples = parse_prometheus_text(text)
        assert samples["repro_service_request_completed_total"][0][1] == 3.0
        assert samples["repro_service_queue_depth"][0][1] == 2.0
        labels = {
            lb["quantile"]
            for lb, _ in samples["repro_service_latency_s"]
            if "quantile" in lb
        }
        assert labels == {"0.5", "0.95", "0.99"}
        assert samples["repro_service_latency_s_count"][0][1] == 3.0
        assert "repro_obs_dropped_events_total" in samples
        assert "repro_obs_uptime_seconds" in samples

    def test_parser_is_strict(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_prometheus_text("not a metric line!")
        with pytest.raises(ValueError, match="non-numeric"):
            parse_prometheus_text("repro_x {nope}")

    def test_parser_handles_labels_and_comments(self):
        samples = parse_prometheus_text(
            "# HELP x y\nm{a=\"b\",c=\"d\"} 1.5\nm 2\n"
        )
        assert samples["m"] == [({"a": "b", "c": "d"}, 1.5), ({}, 2.0)]


# ----------------------------------------------------------------------
# HTTP endpoints
# ----------------------------------------------------------------------
class TestMonitoringServer:
    def test_endpoints(self):
        agg = LiveAggregator(slo=Slo(error_rate=0.5))
        agg.emit_counter("service_request_completed")
        agg.force_collect()
        server = MonitoringServer(agg).start()
        try:
            code, body, headers = _get(server.url + "/metrics")
            assert code == 200
            assert headers["Content-Type"].startswith("text/plain")
            assert "repro_service_request_completed_total" in \
                parse_prometheus_text(body)

            code, body, _ = _get(server.url + "/healthz")
            assert code == 200
            assert json.loads(body)["status"] == "ok"

            code, body, _ = _get(server.url + "/stats")
            assert code == 200
            stats = json.loads(body)
            assert stats["counters"]["service_request_completed"] == 1.0

            code, _, _ = _get(server.url + "/nope")
            assert code == 404
        finally:
            server.stop()
            agg.stop()

    def test_healthz_503_when_failing(self):
        # 10 submissions, 10 failures, budget 1%: burn rate 100 >> 2.
        agg = LiveAggregator(slo=Slo(error_rate=0.01))
        agg.force_collect()
        for _ in range(10):
            agg.emit_counter("service_request_submitted")
            agg.emit_counter("service_request_failed")
        agg.force_collect()
        server = MonitoringServer(agg).start()
        try:
            code, body, _ = _get(server.url + "/healthz")
            assert code == 503
            assert json.loads(body)["status"] == "failing"
        finally:
            server.stop()
            agg.stop()


# ----------------------------------------------------------------------
# repro top
# ----------------------------------------------------------------------
class TestTop:
    def _stats(self):
        return {
            "uptime_s": 12.0,
            "window_s": 10.0,
            "dropped_events": 0,
            "latency": {"service_latency_s": {
                "count": 5, "p50": 0.001, "p95": 0.002, "p99": 0.003}},
            "rates": {"service_request_completed": 2.5},
            "providers": {"cache": {"hits": 4, "hit_rate": 0.8}},
            "slo": {"status": "ok", "checks": {"error_rate": {"status": "ok"}}},
        }

    def test_render_top_frame(self):
        frame = render_top(self._stats())
        assert "repro top" in frame
        assert "service_latency_s" in frame
        assert "slo:" in frame and "ok" in frame
        assert "cache:" in frame and "hit_rate=0.8" in frame

    def test_run_top_once_against_live_server(self):
        agg = LiveAggregator()
        agg.emit_latency("service_latency_s", 0.002)
        agg.force_collect()
        server = MonitoringServer(agg).start()
        out = io.StringIO()
        try:
            rc = run_top(server.url, once=True, stream=out)
        finally:
            server.stop()
            agg.stop()
        assert rc == 0
        assert "repro top" in out.getvalue()

    def test_run_top_unreachable_returns_1(self):
        out = io.StringIO()
        assert run_top("http://127.0.0.1:1", once=True, stream=out) == 1
