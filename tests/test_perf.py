"""Tests for the benchmark harness and regression gate (:mod:`repro.perf`).

Covers: measure() warmup/repeat/setup discipline, Timing statistics,
schema-versioned history persistence, the dual-condition (threshold AND
IQR) regression gate, and the ``bench``/``compare`` CLI including exit
codes.
"""

from __future__ import annotations

import json

import pytest

from repro import perf
from repro.__main__ import main
from repro.perf.harness import Timing, _median, _quantile


def _rec(name, times, run="r", config=None):
    return perf.BenchRecord(
        name=name, run=run, timing=Timing(times_s=tuple(times)),
        config=config or {}, ts="2026-01-01T00:00:00Z",
    )


class TestTiming:
    def test_median_odd_even(self):
        assert _median([3.0, 1.0, 2.0]) == 2.0
        assert _median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_quartiles_and_iqr(self):
        t = Timing(times_s=(1.0, 2.0, 3.0, 4.0, 5.0))
        assert t.median_s == 3.0
        assert t.q1_s == 2.0
        assert t.q3_s == 4.0
        assert t.iqr_s == 2.0
        assert t.min_s == 1.0

    def test_single_sample(self):
        t = Timing(times_s=(0.5,))
        assert t.median_s == 0.5
        assert t.iqr_s == 0.0
        assert _quantile([0.5], 0.25) == 0.5


class TestMeasure:
    def test_warmup_and_repeats_counted(self):
        calls = []
        timing = perf.measure(lambda: calls.append(1), warmup=2, repeats=3)
        assert len(calls) == 5
        assert len(timing.times_s) == 3

    def test_setup_runs_untimed_each_invocation(self):
        setups, runs = [], []
        perf.measure(
            lambda arg: runs.append(arg),
            warmup=1,
            repeats=2,
            setup=lambda: setups.append(len(setups)) or len(setups) - 1,
        )
        assert setups == [0, 1, 2]  # one per warmup + per repeat
        assert runs == [0, 1, 2]

    def test_repeats_validation(self):
        with pytest.raises(ValueError, match="repeats"):
            perf.measure(lambda: None, repeats=0)


class TestHistory:
    def test_append_load_round_trip(self, tmp_path):
        recs = [_rec("a", [0.1, 0.2, 0.3]), _rec("b", [1.0])]
        path = perf.append_history(recs, tmp_path / "h.jsonl")
        loaded = perf.load_history(path)
        assert [r.name for r in loaded] == ["a", "b"]
        assert loaded[0].timing.median_s == pytest.approx(0.2)
        assert loaded[0].timing.times_s == pytest.approx((0.1, 0.2, 0.3))

    def test_append_is_append(self, tmp_path):
        path = perf.append_history([_rec("a", [0.1], run="r1")], tmp_path)
        perf.append_history([_rec("a", [0.1], run="r2")], path)
        loaded = perf.load_history(path)
        assert perf.runs_in_history(loaded) == ["r1", "r2"]
        assert [r.name for r in perf.latest_run(loaded)] == ["a"]
        assert perf.latest_run(loaded)[0].run == "r2"

    def test_directory_resolves_to_history_file(self, tmp_path):
        path = perf.append_history([_rec("a", [0.1])], tmp_path)
        assert path.name == perf.HISTORY_FILE
        assert perf.load_history(tmp_path)[0].name == "a"

    def test_schema_versioned(self, tmp_path):
        path = perf.append_history([_rec("a", [0.1])], tmp_path)
        doc = json.loads(path.read_text())
        assert doc["schema"] == perf.SCHEMA_VERSION
        # A future-schema row is skipped, not crashed on.
        with path.open("a") as fh:
            fh.write(json.dumps({"schema": perf.SCHEMA_VERSION + 1,
                                 "name": "x", "median_s": 1}) + "\n")
        assert [r.name for r in perf.load_history(path)] == ["a"]

    def test_empty_latest_run(self):
        assert perf.latest_run([]) == []


class TestCompare:
    def test_regression_gated_by_both_conditions(self):
        base = [_rec("f", [1.0, 1.0, 1.0])]
        head = [_rec("f", [1.5, 1.5, 1.5])]  # +50%, zero IQR
        res = perf.compare_records(base, head, threshold=0.25)
        assert res.has_regression
        assert res.regressions[0].name == "f"
        assert res.regressions[0].ratio == pytest.approx(1.5)

    def test_below_threshold_never_gates(self):
        base = [_rec("f", [1.0, 1.0, 1.0])]
        head = [_rec("f", [1.1, 1.1, 1.1])]  # +10% < 25%
        assert not perf.compare_records(base, head).has_regression

    def test_delta_inside_iqr_never_gates(self):
        # +50% relative, but the base IQR spans the whole delta: noise.
        base = [_rec("f", [0.5, 1.0, 2.0])]
        head = [_rec("f", [1.5, 1.5, 1.5])]
        res = perf.compare_records(base, head, threshold=0.25)
        assert not res.has_regression

    def test_improvement_reported_not_gated(self):
        base = [_rec("f", [2.0, 2.0, 2.0])]
        head = [_rec("f", [1.0, 1.0, 1.0])]
        res = perf.compare_records(base, head)
        assert not res.has_regression
        assert res.deltas[0].improved

    def test_added_removed_never_gate(self):
        res = perf.compare_records([_rec("old", [1.0])], [_rec("new", [9.0])])
        assert not res.has_regression
        verdicts = {d.name: (d.base is None, d.head is None)
                    for d in res.deltas}
        assert verdicts == {"old": (False, True), "new": (True, False)}

    def test_render(self):
        res = perf.compare_records(
            [_rec("f", [1.0, 1.0, 1.0])], [_rec("f", [2.0, 2.0, 2.0])]
        )
        text = perf.render_compare(res)
        assert "REGRESSED" in text and "REGRESSION" in text


@pytest.mark.slow
class TestSuite:
    def test_run_suite_smoke_filtered(self):
        recs = perf.run_suite(
            smoke=True, warmup=0, repeats=1, label="t", name_filter="solve"
        )
        assert [r.name for r in recs] == ["solve"]
        assert recs[0].config["smoke"] is True
        assert recs[0].timing.median_s > 0

    def test_default_suite_names(self):
        names = [b["name"] for b in perf.default_suite(smoke=True)]
        assert names == [
            "compress_svd", "compress_rsvd", "factorize_seq",
            "factorize_par2", "solve",
        ]


@pytest.mark.slow
class TestCLI:
    def test_bench_then_compare_self(self, tmp_path, capsys):
        out = tmp_path / "hist.jsonl"
        rc = main(["bench", "--smoke", "--repeats", "2", "--warmup", "0",
                   "--filter", "solve", "--label", "base",
                   "--out", str(out)])
        assert rc == 0
        rc = main(["bench", "--smoke", "--repeats", "2", "--warmup", "0",
                   "--filter", "solve", "--label", "head",
                   "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "records appended" in text
        # Same machine, same bench: the gate must not fire.
        rc = main(["compare", str(out), str(out)])
        out_text = capsys.readouterr().out
        assert rc == 0
        assert "no regression" in out_text

    def test_bench_filter_no_match(self, tmp_path, capsys):
        rc = main(["bench", "--smoke", "--filter", "nonexistent",
                   "--out", str(tmp_path / "h.jsonl")])
        assert rc == 1

    def test_compare_synthesized_regression(self, tmp_path, capsys):
        base = perf.append_history(
            [_rec("f", [1.0, 1.0, 1.0], run="b")], tmp_path / "base.jsonl"
        )
        head = perf.append_history(
            [_rec("f", [3.0, 3.0, 3.0], run="h")], tmp_path / "head.jsonl"
        )
        rc = main(["compare", str(base), str(head)])
        text = capsys.readouterr().out
        assert rc == 1
        assert "REGRESSION" in text
        rc = main(["compare", str(base), str(head), "--threshold", "5.0"])
        assert rc == 0
