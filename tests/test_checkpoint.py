"""Checkpoint/restart: atomic save/load, validation, kill-and-resume."""

import json

import numpy as np
import pytest

from repro.core import tlr_cholesky
from repro.matrix import BandTLRMatrix
from repro.runtime import (
    CheckpointConfig,
    Checkpointer,
    build_cholesky_graph,
    execute_graph,
    execute_graph_parallel,
)
from repro.runtime.resilience import as_checkpointer, str_to_tid, tid_to_str
from repro.runtime.task import TaskKind
from repro.utils import CheckpointError, ConfigurationError


def _graph_for(matrix):
    grid = matrix.rank_grid()
    return build_cholesky_graph(
        matrix.ntiles,
        matrix.band_size,
        matrix.desc.tile_size,
        lambda i, j: int(max(grid[i, j], 1)),
    )


@pytest.fixture(scope="module")
def base_matrix(small_problem, rule8):
    return BandTLRMatrix.from_problem(small_problem, rule8, band_size=1)


@pytest.fixture(scope="module")
def baseline_factor(base_matrix):
    m = base_matrix.copy()
    execute_graph(_graph_for(m), m)
    return m.to_dense(lower_only=True)


class _KillAt:
    """Duck-typed injector: raise KeyboardInterrupt at one task's dispatch."""

    def __init__(self, tid):
        self.tid = tid
        self.fired = False

    def pre_dispatch(self, tid, attempt, cancel_event=None):
        if tid == self.tid and not self.fired:
            self.fired = True
            raise KeyboardInterrupt

    def corrupt_output(self, tid, attempt, tile):
        return False


class TestTidSerialization:
    @pytest.mark.parametrize(
        "tid",
        [
            (TaskKind.POTRF, 0),
            (TaskKind.TRSM, 5, 2),
            (TaskKind.GEMM, 3, 2, 1),
        ],
    )
    def test_round_trip(self, tid):
        assert str_to_tid(tid_to_str(tid)) == tid

    @pytest.mark.parametrize("bad", ["LU:1:0", "GEMM:a:b:c", "GEMM"])
    def test_malformed_raises(self, bad):
        with pytest.raises(CheckpointError):
            str_to_tid(bad)


class TestSaveLoad:
    def test_round_trip_equality(self, base_matrix, tmp_path):
        m = base_matrix.copy()
        completed = {(TaskKind.POTRF, 0), (TaskKind.TRSM, 1, 0)}
        ck = Checkpointer(CheckpointConfig(directory=tmp_path))
        manifest = ck.save(m, completed, panels_done=1)
        assert manifest.exists()

        state = Checkpointer(CheckpointConfig(directory=tmp_path)).load_latest()
        assert state is not None
        assert state.completed == completed
        assert state.panels_done == 1
        assert state.seq == 1
        np.testing.assert_array_equal(
            state.matrix.to_dense(), m.to_dense()
        )

    def test_load_from_empty_dir(self, tmp_path):
        ck = Checkpointer(CheckpointConfig(directory=tmp_path / "nope"))
        assert ck.load_latest() is None

    def test_prune_keeps_newest(self, base_matrix, tmp_path):
        m = base_matrix.copy()
        ck = Checkpointer(CheckpointConfig(directory=tmp_path, keep=2))
        for i in range(4):
            ck.save(m, {(TaskKind.POTRF, 0)}, panels_done=i + 1)
        manifests = sorted(p.name for p in tmp_path.glob("ckpt-*.json"))
        assert manifests == ["ckpt-3.json", "ckpt-4.json"]
        state = ck.load_latest()
        assert state.seq == 4 and state.panels_done == 4

    def test_version_mismatch_raises(self, base_matrix, tmp_path):
        ck = Checkpointer(CheckpointConfig(directory=tmp_path))
        manifest = ck.save(base_matrix.copy(), set(), panels_done=0)
        meta = json.loads(manifest.read_text())
        meta["version"] = 99
        manifest.write_text(json.dumps(meta))
        with pytest.raises(CheckpointError):
            ck.load_latest()

    def test_missing_archive_raises(self, base_matrix, tmp_path):
        ck = Checkpointer(CheckpointConfig(directory=tmp_path))
        ck.save(base_matrix.copy(), set(), panels_done=0)
        (tmp_path / "ckpt-1.npz").unlink()
        with pytest.raises(CheckpointError):
            ck.load_latest()

    def test_bad_every_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            Checkpointer(CheckpointConfig(directory=tmp_path, every=0))

    def test_as_checkpointer_coercions(self, tmp_path):
        assert as_checkpointer(None) is None
        ck = as_checkpointer(str(tmp_path))
        assert isinstance(ck, Checkpointer)
        assert as_checkpointer(ck) is ck
        cfg = CheckpointConfig(directory=tmp_path, every=3)
        assert as_checkpointer(cfg).config.every == 3

    def test_validate_against_geometry(self, base_matrix, rule8, tmp_path):
        m = base_matrix.copy()
        ck = Checkpointer(CheckpointConfig(directory=tmp_path))
        ck.save(m, set(), panels_done=0)
        state = ck.load_latest()
        other = BandTLRMatrix.from_dense(
            np.eye(128) * 4.0, 32, rule8, band_size=1
        )
        with pytest.raises(CheckpointError):
            ck.validate_against(_graph_for(other), other, state)

    def test_validate_against_unknown_tasks(self, base_matrix, tmp_path):
        m = base_matrix.copy()
        ck = Checkpointer(CheckpointConfig(directory=tmp_path))
        ck.save(m, {(TaskKind.POTRF, 99)}, panels_done=0)
        state = ck.load_latest()
        with pytest.raises(CheckpointError):
            ck.validate_against(_graph_for(m), m, state)


class TestKillAndResume:
    def test_serial_kill_and_resume(
        self, base_matrix, baseline_factor, tmp_path
    ):
        killed = base_matrix.copy()
        with pytest.raises(KeyboardInterrupt):
            execute_graph(
                _graph_for(killed), killed,
                faults=_KillAt((TaskKind.POTRF, 5)),
                checkpoint=tmp_path,
            )
        assert list(tmp_path.glob("ckpt-*.json"))  # progress survived

        resumed = base_matrix.copy()
        rep = execute_graph(
            _graph_for(resumed), resumed, checkpoint=tmp_path, resume=True
        )
        assert rep.tasks_resumed > 0
        assert rep.tasks_executed > 0
        assert rep.tasks_resumed + rep.tasks_executed == len(
            _graph_for(resumed).tasks
        )
        assert np.array_equal(
            resumed.to_dense(lower_only=True), baseline_factor
        )

    @pytest.mark.parallel
    def test_parallel_kill_and_resume(
        self, base_matrix, baseline_factor, tmp_path
    ):
        killed = base_matrix.copy()
        with pytest.raises(KeyboardInterrupt):
            execute_graph_parallel(
                _graph_for(killed), killed, n_workers=2,
                faults=_KillAt((TaskKind.POTRF, 5)),
                checkpoint=tmp_path,
            )

        resumed = base_matrix.copy()
        rep = execute_graph_parallel(
            _graph_for(resumed), resumed, n_workers=2,
            checkpoint=tmp_path, resume=True,
        )
        assert rep.tasks_resumed > 0
        assert np.array_equal(
            resumed.to_dense(lower_only=True), baseline_factor
        )

    def test_resume_of_finished_run_is_noop(
        self, base_matrix, baseline_factor, tmp_path
    ):
        m = base_matrix.copy()
        execute_graph(_graph_for(m), m, checkpoint=tmp_path)
        m2 = base_matrix.copy()
        rep = execute_graph(
            _graph_for(m2), m2, checkpoint=tmp_path, resume=True
        )
        assert rep.tasks_executed == 0
        assert rep.tasks_resumed == len(_graph_for(m2).tasks)
        assert np.array_equal(m2.to_dense(lower_only=True), baseline_factor)

    def test_resume_without_prior_checkpoint_runs_fresh(
        self, base_matrix, baseline_factor, tmp_path
    ):
        m = base_matrix.copy()
        rep = execute_graph(
            _graph_for(m), m, checkpoint=tmp_path / "fresh", resume=True
        )
        assert rep.tasks_resumed == 0
        assert np.array_equal(m.to_dense(lower_only=True), baseline_factor)


class TestFactorizeRouting:
    def test_resume_requires_checkpoint(self, base_matrix):
        with pytest.raises(ConfigurationError):
            tlr_cholesky(base_matrix.copy(), resume=True)

    def test_resilience_rejects_adaptive_threshold(self, base_matrix):
        with pytest.raises(ConfigurationError):
            tlr_cholesky(
                base_matrix.copy(),
                faults="transient:*:0.1",
                adaptive_threshold=0.5,
            )

    def test_checkpoint_via_solver_api(self, small_problem, tmp_path):
        from repro.core.api import TLRSolver

        solver = TLRSolver.from_problem(small_problem, 1e-8, band_size=1)
        rep = solver.factorize(checkpoint=tmp_path)
        assert rep.resilience.checkpoints_written > 0
        solver2 = TLRSolver.from_problem(small_problem, 1e-8, band_size=1)
        rep2 = solver2.factorize(checkpoint=tmp_path, resume=True)
        assert rep2.tasks_resumed > 0


class TestCheckpointCLI:
    def test_demo_checkpoint_then_resume(self, capsys, tmp_path):
        args = ["demo", "--n", "256", "--tile", "64", "--accuracy", "1e-6",
                "--checkpoint", str(tmp_path)]
        assert main_demo(args) == 0
        out = capsys.readouterr().out
        assert "checkpoints=" in out

        assert main_demo(args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resumed=" in out


def main_demo(args):
    from repro.__main__ import main

    return main(args)
