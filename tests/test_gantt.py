"""Unit tests for trace rendering (Gantt / utilization timeline)."""

import numpy as np
import pytest

from repro.obs import gantt, utilization_timeline
from repro.distribution import ProcessGrid, TwoDBlockCyclic
from repro.runtime import MachineSpec, build_cholesky_graph, simulate


@pytest.fixture(scope="module")
def traced_result():
    g = build_cholesky_graph(8, 2, 256, lambda i, j: 16)
    return simulate(
        g,
        TwoDBlockCyclic(ProcessGrid.squarest(2)),
        MachineSpec(nodes=2, cores_per_node=2),
        collect_trace=True,
    ), g


class TestGantt:
    def test_renders_all_lanes(self, traced_result):
        res, _ = traced_result
        out = gantt(res, width=60)
        lanes = [ln for ln in out.splitlines() if ln.startswith("p")]
        # 2 processes x up to 2 cores.
        assert 2 <= len(lanes) <= 4
        assert all(len(ln) == len(lanes[0]) for ln in lanes)

    def test_contains_kernel_glyphs(self, traced_result):
        res, _ = traced_result
        out = gantt(res, width=60)
        for glyph in "PTSg":
            assert glyph in out

    def test_requires_trace(self, traced_result):
        res, g = traced_result
        no_trace = simulate(
            g,
            TwoDBlockCyclic(ProcessGrid.squarest(2)),
            MachineSpec(nodes=2, cores_per_node=2),
        )
        with pytest.raises(ValueError):
            gantt(no_trace)

    def test_max_rows_truncation(self, traced_result):
        res, _ = traced_result
        out = gantt(res, width=40, max_rows=1)
        assert "more lanes" in out


class TestUtilizationTimeline:
    def test_bucket_count(self, traced_result):
        res, _ = traced_result
        t, busy = utilization_timeline(res, buckets=25)
        assert len(t) == len(busy) == 25

    def test_busy_never_exceeds_core_count(self, traced_result):
        res, _ = traced_result
        _, busy = utilization_timeline(res, buckets=30)
        assert busy.max() <= res.nodes * res.cores_per_node + 1e-9

    def test_integral_matches_busy_time(self, traced_result):
        """Sum of bucket-busy * bucket-width equals total busy core-time."""
        res, _ = traced_result
        t, busy = utilization_timeline(res, buckets=200)
        dt = res.makespan / 200
        np.testing.assert_allclose(busy.sum() * dt, res.busy.sum(), rtol=1e-6)

    def test_requires_trace(self, traced_result):
        res, g = traced_result
        no_trace = simulate(
            g,
            TwoDBlockCyclic(ProcessGrid.squarest(2)),
            MachineSpec(nodes=2, cores_per_node=2),
        )
        with pytest.raises(ValueError):
            utilization_timeline(no_trace)
