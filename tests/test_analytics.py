"""Tests for the trace-analytics layer (:mod:`repro.obs.analytics`).

Covers: critical path on a synthetic DAG with a known answer, occupancy
fractions/timeline, flop-rate attribution against :class:`FlopCounter`
ground truth, the noise-aware trace diff (regression / no-regression /
noise cases), the events.jsonl + graph.json round trip, the
factorize-under-observe → analyze integration path, and the CLI
surface (``analyze`` and ``compare`` on --obs directories).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import TLRSolver, obs, st_3d_exp_problem
from repro.__main__ import main
from repro.linalg.flops import FlopCounter, KernelClass
from repro.obs.analytics import (
    RunTrace,
    TaskSpan,
    critical_path,
    flop_attribution,
    is_dependency_path,
    load_run,
    occupancy,
    render_analysis,
    render_diff,
    run_from_observation,
    trace_diff,
)


def _graph(tasks: dict[str, list[str]], kernels: dict | None = None) -> dict:
    kernels = kernels or {}
    return {
        "ntiles": None,
        "band_size": None,
        "tile_size": None,
        "n_tasks": len(tasks),
        "tasks": {
            name: {
                "kernel": kernels.get(name, "(1)-GEMM"),
                "flops": 0.0,
                "panel": 0,
                "out_tile": [0, 0],
                "deps": deps,
            }
            for name, deps in tasks.items()
        },
    }


def _span(name, start, end, thread="w0", kernel="(1)-GEMM", flops=0.0):
    return TaskSpan(
        name=name, start=start, end=end, thread=thread,
        kernel=kernel, flops=flops,
    )


def _diamond_run() -> RunTrace:
    """A -> {B, C} -> D with durations 1, 2, 5, 1: CP is A-C-D = 7."""
    tasks = [
        _span("A", 0.0, 1.0, "w0"),
        _span("B", 1.0, 3.0, "w0"),
        _span("C", 1.0, 6.0, "w1"),
        _span("D", 6.0, 7.0, "w0"),
    ]
    graph = _graph({"A": [], "B": ["A"], "C": ["A"], "D": ["B", "C"]})
    return RunTrace(tasks=tasks, graph=graph, wall_s=7.0)


class TestCriticalPath:
    def test_known_chain(self):
        cp = critical_path(_diamond_run())
        assert cp.chain == ["A", "C", "D"]
        assert cp.length_s == pytest.approx(7.0)

    def test_is_valid_dependency_path(self):
        run = _diamond_run()
        cp = critical_path(run)
        assert is_dependency_path(run, cp.chain)
        assert not is_dependency_path(run, ["A", "D"])  # no direct edge
        assert not is_dependency_path(run, [])

    def test_bounds(self):
        run = _diamond_run()
        cp = critical_path(run)
        # CP <= wall and, for this serial-bottleneck DAG, CP >= wall / p.
        assert cp.length_s <= cp.wall_s
        assert cp.length_s >= cp.wall_s / cp.n_workers
        assert cp.parallelism == pytest.approx(9.0 / 7.0)
        assert cp.chain_fraction == pytest.approx(1.0)

    def test_chain_tasks_only_observed(self):
        """Graph tasks without a span (skipped/resumed) are excluded."""
        run = _diamond_run()
        run.graph["tasks"]["E"] = {
            "kernel": "(1)-GEMM", "flops": 0.0, "panel": 0,
            "out_tile": [0, 0], "deps": ["D"],
        }
        cp = critical_path(run)
        assert "E" not in cp.chain

    def test_retried_task_durations_sum(self):
        run = _diamond_run()
        run.tasks.append(_span("C", 7.0, 9.0, "w1"))  # retry attempt
        cp = critical_path(run)
        assert cp.length_s == pytest.approx(9.0)

    def test_no_graph_raises(self):
        run = RunTrace(tasks=[_span("A", 0, 1)], graph=None, wall_s=1.0)
        with pytest.raises(ValueError, match="no recorded dependency graph"):
            critical_path(run)

    def test_cycle_raises(self):
        run = _diamond_run()
        run.graph["tasks"]["A"]["deps"] = ["D"]
        with pytest.raises(ValueError, match="cyclic"):
            critical_path(run)


class TestOccupancy:
    def test_fractions(self):
        run = _diamond_run()
        occ = occupancy(run, buckets=7)
        assert occ.fractions["w0"] == pytest.approx(4.0 / 7.0)
        assert occ.fractions["w1"] == pytest.approx(5.0 / 7.0)
        assert occ.mean_occupancy == pytest.approx(4.5 / 7.0)

    def test_timeline_conservation(self):
        """Bucketed busy-worker counts integrate back to total busy time."""
        run = _diamond_run()
        occ = occupancy(run, buckets=14)
        dt = occ.wall_s / 14
        assert sum(v * dt for v in occ.timeline) == pytest.approx(run.busy_s)

    def test_timeline_peak(self):
        run = _diamond_run()
        occ = occupancy(run, buckets=7)
        # Both workers busy during (1, 3): buckets 1 and 2 read 2.0.
        assert occ.timeline[1] == pytest.approx(2.0)
        assert occ.timeline[2] == pytest.approx(2.0)

    def test_empty_run(self):
        occ = occupancy(RunTrace(tasks=[], graph=None, wall_s=0.0))
        assert occ.mean_occupancy == 0.0


class TestFlopAttribution:
    def test_against_flop_counter(self):
        """Span-attributed per-class flops equal FlopCounter ground truth."""
        counter = FlopCounter()
        spans = []
        t = 0.0
        for i, (kc, flops) in enumerate(
            [(KernelClass.POTRF_DENSE, 100.0),
             (KernelClass.GEMM_LR, 500.0),
             (KernelClass.GEMM_LR, 300.0),
             (KernelClass.TRSM_DENSE, 50.0)]
        ):
            counter.add(kc, flops)
            spans.append(
                _span(f"t{i}", t, t + 1.0, kernel=kc.value, flops=flops)
            )
            t += 1.0
        run = RunTrace(tasks=spans, graph=None, wall_s=t)
        rates = flop_attribution(run)
        for kc, total in counter.per_class.items():
            assert rates[kc.value].flops == pytest.approx(total)
        assert rates[KernelClass.GEMM_LR.value].tasks == 2
        # 800 flops over 2 measured seconds.
        assert rates[KernelClass.GEMM_LR.value].gflops == pytest.approx(
            800.0 / 2.0 / 1e9
        )

    def test_dense_band_split(self):
        from repro.obs.analytics import dense_lowrank_split

        run = RunTrace(
            tasks=[
                _span("a", 0, 1, kernel="(1)-POTRF"),
                _span("b", 1, 4, kernel="(6)-GEMM"),
            ],
            graph=None,
            wall_s=4.0,
        )
        dense, lowrank = dense_lowrank_split(flop_attribution(run))
        assert dense == pytest.approx(1.0)
        assert lowrank == pytest.approx(3.0)

    def test_unlabelled_grouped(self):
        run = RunTrace(
            tasks=[_span("a", 0, 1, kernel=None)], graph=None, wall_s=1.0
        )
        rates = flop_attribution(run)
        assert "(unlabelled)" in rates


def _kernel_run(gemm_scale: float = 1.0, jitter: float = 0.0) -> RunTrace:
    """Many GEMM/TRSM task spans with controllable GEMM duration."""
    rng = np.random.default_rng(0)
    tasks = []
    t = 0.0
    for i in range(20):
        d = 0.010 * gemm_scale + (rng.uniform(-jitter, jitter) if jitter else 0)
        tasks.append(_span(f"GEMM_{i}", t, t + d, kernel="(6)-GEMM"))
        t += d
        tasks.append(_span(f"TRSM_{i}", t, t + 0.005, kernel="(4)-TRSM"))
        t += 0.005
    return RunTrace(tasks=tasks, graph=None, wall_s=t)


class TestTraceDiff:
    def test_no_regression_identical(self):
        diff = trace_diff(_kernel_run(), _kernel_run())
        assert not diff.has_regression
        assert not diff.only_in_base and not diff.only_in_head

    def test_injected_gemm_slowdown_flags_exactly_gemm(self):
        """A 3x-slowed GEMM kernel flags the GEMM class and nothing else."""
        diff = trace_diff(_kernel_run(), _kernel_run(gemm_scale=3.0))
        assert diff.has_regression
        assert [d.kernel for d in diff.regressions] == ["(6)-GEMM"]
        gemm = next(d for d in diff.kernels if d.kernel == "(6)-GEMM")
        assert gemm.ratio == pytest.approx(3.0, rel=1e-6)

    def test_noise_suppresses_small_delta(self):
        """A delta inside the IQR never gates, whatever its ratio."""
        base = _kernel_run(jitter=0.009)
        head = _kernel_run(gemm_scale=1.4, jitter=0.009)
        diff = trace_diff(base, head, threshold=0.25)
        gemm = next(d for d in diff.kernels if d.kernel == "(6)-GEMM")
        grow = gemm.head.median_s - gemm.base.median_s
        assert grow <= max(gemm.base.iqr_s, gemm.head.iqr_s)
        assert not gemm.regressed

    def test_structural_diff(self):
        base = _diamond_run()
        head = _diamond_run()
        head.tasks = [t for t in head.tasks if t.name != "D"]
        diff = trace_diff(base, head)
        assert diff.only_in_base == ["D"]
        assert diff.only_in_head == []

    def test_render_diff(self):
        text = render_diff(trace_diff(_kernel_run(), _kernel_run(3.0)))
        assert "REGRESSED" in text
        assert "(6)-GEMM" in text


class TestRoundTrip:
    def test_load_run_from_written_observation(self, tmp_path):
        ob = obs.Observation(meta={"who": "test"})
        with ob.tracer.span("GEMM_1", "task", kernel="(6)-GEMM", flops=42.0):
            pass
        with ob.tracer.span("setup", "phase"):  # non-task: excluded
            pass
        ob.graph = _graph({"GEMM_1": []})
        ob.write(tmp_path)
        run = load_run(tmp_path)
        assert len(run.tasks) == 1
        assert run.tasks[0].kernel == "(6)-GEMM"
        assert run.tasks[0].flops == pytest.approx(42.0)
        assert run.graph["tasks"]["GEMM_1"]["deps"] == []
        assert run.meta == {"who": "test"}

    def test_load_run_accepts_artifact_file(self, tmp_path):
        ob = obs.Observation()
        with ob.tracer.span("A", "task"):
            pass
        ob.write(tmp_path)
        run = load_run(tmp_path / "events.jsonl")
        assert len(run.tasks) == 1

    def test_load_run_missing(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="events.jsonl"):
            load_run(tmp_path)

    def test_graph_json_written_only_with_graph(self, tmp_path):
        ob = obs.Observation()
        paths = ob.write(tmp_path / "a")
        assert "graph" not in paths
        ob2 = obs.Observation()
        ob2.graph = _graph({"A": []})
        paths2 = ob2.write(tmp_path / "b")
        assert json.loads(paths2["graph"].read_text())["n_tasks"] == 1


@pytest.mark.slow
class TestIntegration:
    """Factorize under observe → analyze, both executors."""

    @pytest.fixture(scope="class")
    def observed_run(self, tmp_path_factory):
        problem = st_3d_exp_problem(n=512, tile_size=64)
        with obs.observe(meta={"case": "analytics-int"}) as ob:
            solver = TLRSolver.from_problem(
                problem, accuracy=1e-6, band_size=2
            )
            solver.factorize(n_workers=2)
        outdir = tmp_path_factory.mktemp("obsrun")
        ob.write(outdir)
        return ob, outdir

    def test_live_and_loaded_agree(self, observed_run):
        ob, outdir = observed_run
        live = run_from_observation(ob)
        loaded = load_run(outdir)
        assert len(live.tasks) == len(loaded.tasks)
        assert {t.name for t in live.tasks} == {t.name for t in loaded.tasks}
        assert live.graph == loaded.graph

    def test_critical_path_valid_and_bounded(self, observed_run):
        _, outdir = observed_run
        run = load_run(outdir)
        cp = critical_path(run)
        assert cp.chain, "critical path must be non-empty"
        assert is_dependency_path(run, cp.chain)
        assert 0.0 < cp.length_s <= cp.wall_s + 1e-9
        # Graham: the task window cannot beat max(CP, busy/p).
        assert cp.window_s >= cp.length_s - 1e-9
        assert cp.window_s >= cp.busy_s / cp.n_workers - 1e-9

    def test_every_task_span_annotated(self, observed_run):
        _, outdir = observed_run
        run = load_run(outdir)
        valid = {k.value for k in KernelClass}
        assert run.tasks
        for t in run.tasks:
            assert t.kernel in valid
            assert t.flops > 0.0
        # Every observed task is in the exported graph and vice versa.
        assert {t.name for t in run.tasks} == set(run.graph["tasks"])

    def test_attributed_flops_match_graph(self, observed_run):
        _, outdir = observed_run
        run = load_run(outdir)
        rates = flop_attribution(run)
        by_class: dict[str, float] = {}
        for info in run.graph["tasks"].values():
            by_class[info["kernel"]] = by_class.get(info["kernel"], 0) \
                + info["flops"]
        for kernel, total in by_class.items():
            assert rates[kernel].flops == pytest.approx(total, rel=1e-9)

    def test_sequential_graph_executor_also_annotates(self):
        from repro import TruncationRule
        from repro.matrix import BandTLRMatrix
        from repro.runtime import build_cholesky_graph
        from repro.runtime.executor import execute_graph

        problem = st_3d_exp_problem(n=256, tile_size=64)
        matrix = BandTLRMatrix.from_problem(
            problem, TruncationRule(eps=1e-6), band_size=2
        )
        grid = matrix.rank_grid()
        graph = build_cholesky_graph(
            matrix.ntiles, matrix.band_size, matrix.desc.tile_size,
            lambda i, j: int(max(grid[i, j], 1)),
        )
        with obs.observe() as ob:
            execute_graph(graph, matrix)
        run = run_from_observation(ob)
        assert run.graph is not None
        assert len(run.tasks) == len(run.graph["tasks"])
        cp = critical_path(run)
        assert is_dependency_path(run, cp.chain)
        # One thread executed everything, so CP <= busy == window.
        assert run.n_workers == 1
        assert cp.length_s <= run.busy_s + 1e-9

    def test_render_analysis_smoke(self, observed_run):
        _, outdir = observed_run
        text = render_analysis(load_run(outdir))
        assert "critical path" in text
        assert "worker occupancy" in text
        assert "Gflop/s" in text


class TestCLI:
    def _write_run(self, outdir, gemm_scale=1.0):
        run = _kernel_run(gemm_scale=gemm_scale)
        ob = obs.Observation()
        # Synthesize the artifacts directly from the RunTrace.
        lines = [
            json.dumps({
                "type": "span", "name": t.name, "cat": "task",
                "start": t.start, "end": t.end, "thread": t.thread,
                "depth": 0, "parent": None,
                "attrs": {"kernel": t.kernel, "flops": t.flops},
            })
            for t in run.tasks
        ]
        outdir.mkdir(parents=True, exist_ok=True)
        (outdir / "events.jsonl").write_text("\n".join(lines) + "\n")
        (outdir / "summary.json").write_text(json.dumps(
            {"meta": {}, "wall_s": run.wall_s}
        ))
        del ob
        return outdir

    def test_analyze_cli(self, tmp_path, capsys):
        d = self._write_run(tmp_path / "run")
        rc = main(["analyze", str(d), "--width", "100", "--buckets", "20"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "worker occupancy" in out
        assert "(no dependency graph recorded" in out

    def test_compare_cli_identical_ok(self, tmp_path, capsys):
        a = self._write_run(tmp_path / "a")
        b = self._write_run(tmp_path / "b")
        rc = main(["compare", str(a), str(b)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no regression" in out

    def test_compare_cli_flags_injected_gemm(self, tmp_path, capsys):
        a = self._write_run(tmp_path / "a")
        b = self._write_run(tmp_path / "b", gemm_scale=3.0)
        rc = main(["compare", str(a), str(b)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REGRESSION" in out
        assert "(6)-GEMM" in out
        assert "(4)-TRSM" not in out.split("REGRESSION")[-1]

    def test_compare_cli_bad_paths(self, tmp_path, capsys):
        rc = main(["compare", str(tmp_path / "x"), str(tmp_path / "y")])
        assert rc == 2
