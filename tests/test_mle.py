"""Unit tests for the MLE pipeline (Eq. 1)."""

import numpy as np
import pytest

from repro import TruncationRule, st_3d_exp_problem
from repro.matrix import BandTLRMatrix
from repro.core import (
    LikelihoodEvaluator,
    fit_mle,
    log_likelihood,
    tlr_cholesky,
)
from repro.utils import ConfigurationError


@pytest.fixture(scope="module")
def mle_problem():
    return st_3d_exp_problem(343, 49, seed=17)


@pytest.fixture(scope="module")
def mle_z(mle_problem):
    return mle_problem.sample_measurements(seed=99)


class TestLogLikelihood:
    def test_matches_dense_formula(self, mle_problem, mle_z):
        a = mle_problem.dense()
        m = BandTLRMatrix.from_problem(mle_problem, TruncationRule(eps=1e-10), 1)
        tlr_cholesky(m)
        ll = log_likelihood(m, mle_z)
        n = mle_problem.n
        sign, logdet = np.linalg.slogdet(a)
        quad = mle_z @ np.linalg.solve(a, mle_z)
        ref = -0.5 * (n * np.log(2 * np.pi) + logdet + quad)
        assert ll == pytest.approx(ref, abs=1e-4)

    def test_rejects_bad_shape(self, mle_problem):
        m = BandTLRMatrix.from_problem(mle_problem, TruncationRule(eps=1e-8), 1)
        tlr_cholesky(m)
        with pytest.raises(ConfigurationError):
            log_likelihood(m, np.zeros(10))


class TestLikelihoodEvaluator:
    def test_true_parameters_beat_wrong_ones(self, mle_problem, mle_z):
        ev = LikelihoodEvaluator(
            points=mle_problem.points,
            z=mle_z,
            tile_size=49,
            rule=TruncationRule(eps=1e-8),
        )
        ll_true = ev(1.0, 0.1)
        ll_wrong_len = ev(1.0, 0.5)
        ll_wrong_var = ev(10.0, 0.1)
        assert ll_true > ll_wrong_len
        assert ll_true > ll_wrong_var

    def test_invalid_parameters_give_minus_inf(self, mle_problem, mle_z):
        ev = LikelihoodEvaluator(
            points=mle_problem.points, z=mle_z, tile_size=49
        )
        assert ev(-1.0, 0.1) == float("-inf")

    def test_evaluations_logged(self, mle_problem, mle_z):
        ev = LikelihoodEvaluator(
            points=mle_problem.points, z=mle_z, tile_size=49
        )
        ev(1.0, 0.1)
        assert len(ev.evaluations) == 1


class TestFitMle:
    @pytest.mark.slow
    def test_recovers_parameters_roughly(self, mle_problem, mle_z):
        """With n=343 the MLE should land in the right neighbourhood of
        (theta1, theta2) = (1, 0.1)."""
        ev = LikelihoodEvaluator(
            points=mle_problem.points,
            z=mle_z,
            tile_size=49,
            rule=TruncationRule(eps=1e-6),
        )
        res = fit_mle(ev, initial=(0.5, 0.05), max_iterations=60)
        assert 0.3 < res.variance < 3.0
        assert 0.03 < res.correlation_length < 0.4
        assert res.n_evaluations > 5

    def test_rejects_bad_initial(self, mle_problem, mle_z):
        ev = LikelihoodEvaluator(points=mle_problem.points, z=mle_z, tile_size=49)
        with pytest.raises(ConfigurationError):
            fit_mle(ev, initial=(0.0, 0.1))
