"""Unit tests for TLR matvec and iterative refinement."""

import numpy as np
import pytest

from repro import TruncationRule, st_3d_exp_problem
from repro.core import tlr_cholesky
from repro.core.refine import refined_solve, tlr_matvec
from repro.matrix import BandTLRMatrix
from repro.utils import ConfigurationError


@pytest.fixture(scope="module")
def problem():
    return st_3d_exp_problem(729, 81, seed=12, nugget=1e-2)


@pytest.fixture(scope="module")
def dense_a(problem):
    return problem.dense()


class TestTlrMatvec:
    def test_matches_dense(self, problem, dense_a):
        m = BandTLRMatrix.from_problem(problem, TruncationRule(eps=1e-10), 2)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(729)
        np.testing.assert_allclose(tlr_matvec(m, x), dense_a @ x, atol=1e-6)

    def test_multicolumn(self, problem, dense_a):
        m = BandTLRMatrix.from_problem(problem, TruncationRule(eps=1e-10), 1)
        x = np.random.default_rng(1).standard_normal((729, 3))
        y = tlr_matvec(m, x)
        assert y.shape == (729, 3)
        np.testing.assert_allclose(y, dense_a @ x, atol=1e-6)

    def test_wrong_length_rejected(self, problem):
        m = BandTLRMatrix.from_problem(problem, TruncationRule(eps=1e-6), 1)
        with pytest.raises(ConfigurationError):
            tlr_matvec(m, np.zeros(5))

    def test_symmetry(self, problem):
        """x^T (A y) == y^T (A x) — the implicit transpose application."""
        m = BandTLRMatrix.from_problem(problem, TruncationRule(eps=1e-8), 1)
        rng = np.random.default_rng(2)
        x, y = rng.standard_normal(729), rng.standard_normal(729)
        assert x @ tlr_matvec(m, y) == pytest.approx(y @ tlr_matvec(m, x))


class TestRefinedSolve:
    def test_refinement_beats_direct_solve(self, problem, dense_a):
        """A loose factor refined against the exact problem reaches far
        better accuracy than the direct solve."""
        loose = BandTLRMatrix.from_problem(problem, TruncationRule(eps=1e-3), 1)
        tlr_cholesky(loose)
        rng = np.random.default_rng(3)
        x_true = rng.standard_normal(729)
        rhs = dense_a @ x_true

        res = refined_solve(
            loose, rhs, operator=problem, tolerance=1e-10, max_iterations=20
        )
        direct_err = np.linalg.norm(
            res.residual_norms[0]
        )  # first entry = direct solve residual
        assert res.iterations > 0
        assert res.residual_norms[-1] < res.residual_norms[0] / 10
        err = np.linalg.norm(res.x - x_true) / np.linalg.norm(x_true)
        assert err < 1e-6
        assert res.converged or res.residual_norms[-1] < 1e-8

    def test_accurate_factor_needs_no_refinement(self, problem, dense_a):
        tight = BandTLRMatrix.from_problem(problem, TruncationRule(eps=1e-12), 2)
        tlr_cholesky(tight)
        rhs = dense_a @ np.ones(729)
        res = refined_solve(tight, rhs, operator=problem, tolerance=1e-9)
        assert res.iterations <= 1
        assert res.converged

    def test_residual_history_monotone(self, problem, dense_a):
        loose = BandTLRMatrix.from_problem(problem, TruncationRule(eps=1e-4), 1)
        tlr_cholesky(loose)
        rhs = dense_a @ np.ones(729)
        res = refined_solve(loose, rhs, operator=problem, tolerance=1e-12,
                            max_iterations=8)
        hist = res.residual_norms
        # Strictly improving until the final (possibly stagnating) entry.
        assert all(b < a for a, b in zip(hist[:-1], hist[1:-1] or hist[1:]))

    def test_self_operator_reports_history(self, problem):
        m = BandTLRMatrix.from_problem(problem, TruncationRule(eps=1e-8), 1)
        factor = m.copy()
        tlr_cholesky(factor)
        rhs = np.ones(729)
        res = refined_solve(factor, rhs, tolerance=1e-30, max_iterations=2)
        assert len(res.residual_norms) >= 1

    def test_zero_rhs(self, problem):
        m = BandTLRMatrix.from_problem(problem, TruncationRule(eps=1e-8), 1)
        tlr_cholesky(m)
        res = refined_solve(m, np.zeros(729))
        np.testing.assert_array_equal(res.x, np.zeros(729))
        assert res.converged

    def test_bad_rhs_rejected(self, problem):
        m = BandTLRMatrix.from_problem(problem, TruncationRule(eps=1e-8), 1)
        tlr_cholesky(m)
        with pytest.raises(ConfigurationError):
            refined_solve(m, np.zeros((729, 2)))
