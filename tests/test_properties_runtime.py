"""Additional hypothesis property suites on runtime structures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution import (
    BandDistribution,
    OneDBlockCyclic,
    ProcessGrid,
    TwoDBlockCyclic,
)
from repro.runtime import build_cholesky_graph
from repro.runtime.dataflow import classify_dataflow
from repro.runtime.solve_graph import SolveKind, build_solve_graph

pytestmark = pytest.mark.slow



@given(
    nt=st.integers(2, 10),
    band=st.integers(1, 4),
    nprocs=st.integers(1, 9),
    k=st.integers(1, 20),
)
@settings(max_examples=25, deadline=None)
def test_property_dataflow_totals_cover_edges(nt, band, nprocs, k):
    """local + remote always equals the edge count, for any distribution."""
    g = build_cholesky_graph(nt, band, 32, lambda i, j: k)
    n_edges = sum(len(t.deps) for t in g.tasks.values())
    for dist in (
        TwoDBlockCyclic(ProcessGrid.squarest(nprocs)),
        OneDBlockCyclic(nprocs, axis="row"),
        BandDistribution(ProcessGrid.squarest(nprocs), band_size=band),
    ):
        bd = classify_dataflow(g, dist)
        assert bd.local_total + bd.remote_total == n_edges
        if nprocs == 1:
            assert bd.remote_total == 0


@given(
    nt=st.integers(1, 12),
    band=st.integers(1, 4),
    k=st.integers(1, 30),
    kind=st.sampled_from(list(SolveKind)),
)
@settings(max_examples=25, deadline=None)
def test_property_solve_graph_shape(nt, band, k, kind):
    """Solve DAGs: task count n + n(n-1)/2, valid, critical path length
    grows linearly in NT (latency-bound)."""
    g = build_solve_graph(nt, band, 32, lambda i, j: k, kind=kind)
    assert g.n_tasks == nt + nt * (nt - 1) // 2
    g.validate()
    # The sequential sweep forces at least NT tasks on the critical path.
    order = g.topological_order()
    assert len(order) == g.n_tasks


@given(
    nt=st.integers(2, 10),
    band=st.integers(1, 5),
    k1=st.integers(1, 64),
    k2=st.integers(1, 64),
)
@settings(max_examples=25, deadline=None)
def test_property_graph_flops_monotone_in_ranks(nt, band, k1, k2):
    """Pointwise-larger rank fields never decrease the graph's total cost."""
    lo, hi = min(k1, k2), max(k1, k2)
    g_lo = build_cholesky_graph(nt, band, 64, lambda i, j: lo)
    g_hi = build_cholesky_graph(nt, band, 64, lambda i, j: hi)
    assert g_hi.total_flops() >= g_lo.total_flops() - 1e-9


@given(nt=st.integers(2, 8), seed=st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_property_message_sizes_match_formats(nt, seed):
    """Every edge payload is either b² (dense tile) or 2bk (compressed)."""
    rng = np.random.default_rng(seed)
    b, band = 32, 2
    ranks = {}

    def rank(i, j):
        return ranks.setdefault((i, j), int(rng.integers(1, 16)))

    g = build_cholesky_graph(nt, band, b, rank)
    for t in g.tasks.values():
        for e in t.deps:
            i, j = e.tile
            if i - j < band:
                assert e.elements == b * b
            else:
                assert e.elements == 2 * b * rank(i, j)
