"""Unit tests for tile-based and adaptive online densification
(the paper's Section IX / Section V-B future-work features)."""

import numpy as np
import pytest

from repro import TruncationRule, st_3d_exp_problem
from repro.core import (
    apply_densification,
    plan_tile_densification,
    tlr_cholesky,
)
from repro.linalg import DenseTile, LowRankTile
from repro.matrix import BandTLRMatrix
from repro.utils import ConfigurationError


def spiky_grid(nt, b, spike_d, base=8, spike=None):
    """A rank grid with low base ranks and one high-rank sub-diagonal."""
    spike = spike or b // 2
    g = np.full((nt, nt), -1, dtype=np.int64)
    for i in range(nt):
        for j in range(i):
            g[i, j] = spike if (i - j) == spike_d else base
    return g


class TestPlan:
    def test_diagonal_always_dense(self):
        plan = plan_tile_densification(spiky_grid(8, 128, 3), 128)
        assert all(plan.dense_mask[i, i] for i in range(8))

    def test_captures_far_spike_without_band(self):
        """The key advantage over band-basis: an isolated high-rank
        sub-diagonal far from the diagonal gets densified alone."""
        nt, b = 12, 128
        plan = plan_tile_densification(spiky_grid(nt, b, spike_d=6), b)
        # Spike tiles (with enough updates to amortize) are densified...
        assert plan.dense_mask[10, 4]
        # ...while the low-rank tiles in between stay compressed.
        assert not plan.dense_mask[10, 7]

    def test_low_rank_everywhere_keeps_tlr(self):
        nt, b = 10, 256
        g = np.full((nt, nt), -1, dtype=np.int64)
        for i in range(nt):
            for j in range(i):
                g[i, j] = 4
        plan = plan_tile_densification(g, b)
        assert plan.n_policy == 0

    def test_high_rank_everywhere_densifies(self):
        nt, b = 8, 64
        g = np.full((nt, nt), -1, dtype=np.int64)
        for i in range(nt):
            for j in range(i):
                g[i, j] = 60
        plan = plan_tile_densification(g, b)
        # All tiles with at least one update are densified.
        assert plan.dense_mask[5, 2]

    def test_closure_enforced(self):
        """If (m,k) and (n,k) are dense then (m,n) must be dense."""
        plan = plan_tile_densification(spiky_grid(12, 128, 2, base=8), 128)
        mask = plan.dense_mask
        nt = 12
        for m in range(nt):
            for n in range(m):
                for k in range(n):
                    if mask[m, k] and mask[n, k]:
                        assert mask[m, n], (m, n, k)

    def test_rejects_bad_fluctuation(self):
        with pytest.raises(ConfigurationError):
            plan_tile_densification(spiky_grid(4, 64, 1), 64, fluctuation=2.0)


class TestApplyAndFactorize:
    @pytest.fixture(scope="class")
    def problem(self):
        return st_3d_exp_problem(1000, 125, seed=9, nugget=1e-3)

    def test_apply_respects_plan(self, problem):
        rule = TruncationRule(eps=1e-5)
        m1 = BandTLRMatrix.from_problem(problem, rule, band_size=1)
        plan = plan_tile_densification(m1.rank_grid(), 125)
        m = apply_densification(m1, problem, plan)
        for (i, j), tile in m.tiles.items():
            if plan.dense_mask[i, j]:
                assert isinstance(tile, DenseTile), (i, j)
            else:
                assert isinstance(tile, LowRankTile), (i, j)

    def test_factorization_correct_after_densification(self, problem):
        rule = TruncationRule(eps=1e-5)
        m1 = BandTLRMatrix.from_problem(problem, rule, band_size=1)
        plan = plan_tile_densification(m1.rank_grid(), 125)
        m = apply_densification(m1, problem, plan)
        tlr_cholesky(m)
        a = problem.dense()
        l = m.to_dense(lower_only=True)
        assert np.linalg.norm(l @ l.T - a) / np.linalg.norm(a) < 1e-3

    def test_geometry_mismatch_rejected(self, problem):
        rule = TruncationRule(eps=1e-5)
        m1 = BandTLRMatrix.from_problem(problem, rule, band_size=1)
        bad = plan_tile_densification(spiky_grid(4, 125, 1), 125)
        with pytest.raises(ConfigurationError):
            apply_densification(m1, problem, bad)


class TestAdaptiveOnline:
    @pytest.fixture(scope="class")
    def problem(self):
        return st_3d_exp_problem(1000, 125, seed=9, nugget=1e-3)

    def test_adaptive_densifies_high_rank_tiles(self, problem):
        rule = TruncationRule(eps=1e-8)
        m = BandTLRMatrix.from_problem(problem, rule, band_size=1)
        rep = tlr_cholesky(m, adaptive_threshold=0.3)
        assert rep.tiles_densified_online > 0
        # Some tiles ended up dense even though band_size is 1.
        dense_offdiag = sum(
            1 for (i, j), t in m.tiles.items()
            if i != j and isinstance(t, DenseTile)
        )
        assert dense_offdiag == rep.tiles_densified_online

    def test_adaptive_factor_is_correct(self, problem):
        rule = TruncationRule(eps=1e-8)
        m = BandTLRMatrix.from_problem(problem, rule, band_size=1)
        tlr_cholesky(m, adaptive_threshold=0.3)
        a = problem.dense()
        l = m.to_dense(lower_only=True)
        assert np.linalg.norm(l @ l.T - a) / np.linalg.norm(a) < 1e-6

    def test_threshold_one_never_densifies(self, problem):
        rule = TruncationRule(eps=1e-5)
        m = BandTLRMatrix.from_problem(problem, rule, band_size=1)
        rep = tlr_cholesky(m, adaptive_threshold=1.0)
        assert rep.tiles_densified_online == 0

    def test_rejects_bad_threshold(self, problem):
        rule = TruncationRule(eps=1e-5)
        m = BandTLRMatrix.from_problem(problem, rule, band_size=1)
        with pytest.raises(ConfigurationError):
            tlr_cholesky(m, adaptive_threshold=0.0)
