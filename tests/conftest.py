"""Shared fixtures: small covariance problems and their dense references.

Problem generation and dense materialization dominate test runtime, so the
standard small problems are session-scoped.  Tests must not mutate these
fixtures — factorization tests copy the matrices they modify.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import TruncationRule, st_3d_exp_problem
from repro.matrix import BandTLRMatrix


@pytest.fixture(scope="session")
def small_problem():
    """A 512-point st-3D-exp problem with 64-point tiles (NT = 8)."""
    return st_3d_exp_problem(512, 64, seed=42)


@pytest.fixture(scope="session")
def small_dense(small_problem):
    """Dense covariance of :func:`small_problem`."""
    return small_problem.dense()


@pytest.fixture(scope="session")
def medium_problem():
    """A 1500-point st-3D-exp problem with 125-point tiles (NT = 12)."""
    return st_3d_exp_problem(1500, 125, seed=7)


@pytest.fixture(scope="session")
def medium_dense(medium_problem):
    return medium_problem.dense()


@pytest.fixture(scope="session")
def rule8():
    """The paper's default accuracy threshold, 1e-8."""
    return TruncationRule(eps=1e-8)


@pytest.fixture()
def small_tlr(small_problem, rule8):
    """Fresh band-1 compressed matrix of the small problem (mutable)."""
    return BandTLRMatrix.from_problem(small_problem, rule8, band_size=1)


@pytest.fixture()
def rng():
    """Fresh, pinned generator per test.

    Function-scoped on purpose: a shared session-scope generator makes
    each test's random draws depend on which tests ran before it, so the
    suite only passes in one ordering.  A fresh ``default_rng(2021)``
    per test keeps every test's draws identical under ``-x --lf``,
    random ordering, and single-test invocation alike.
    """
    return np.random.default_rng(2021)
