"""Unit tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.n == 2048
        assert args.accuracy == 1e-8

    def test_simulate_scheduler_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--scheduler", "magic"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "repro.runtime" in out

    def test_demo_small(self, capsys):
        rc = main(["demo", "--n", "256", "--tile", "64", "--accuracy", "1e-6"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "solve relative error" in out

    def test_tune(self, capsys):
        rc = main(["tune", "--n", "512", "--tile", "64", "--accuracy", "1e-4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tuned BAND_SIZE" in out

    def test_simulate(self, capsys):
        rc = main(
            ["simulate", "--nt", "12", "--nodes", "2", "--cores", "2",
             "--split", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan" in out

    def test_simulate_with_gantt(self, capsys):
        rc = main(
            ["simulate", "--nt", "8", "--nodes", "2", "--cores", "2",
             "--split", "1", "--gantt", "--width", "40"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "P=potrf" in out


class TestSimulateFeatureFlags:
    def test_steal_and_gpus(self, capsys):
        rc = main(
            ["simulate", "--nt", "10", "--nodes", "2", "--cores", "2",
             "--split", "1", "--steal", "--gpus", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "gpu busy" in out

    def test_gpu_busy_zero_without_gpus(self, capsys):
        rc = main(
            ["simulate", "--nt", "8", "--nodes", "2", "--cores", "2",
             "--split", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "gpu busy" in out
