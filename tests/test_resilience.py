"""Chaos suite: deterministic fault injection + the recovery engine.

The central claim under test is the paper-grade one: a factorization that
absorbed *recoverable* faults (transient errors, NaN corruptions, pool
exhaustion, stalls) produces the **bitwise identical** Cholesky factor of
a fault-free run — across both executors and any worker count.
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TruncationRule, obs, st_3d_exp_problem
from repro.core import tlr_cholesky
from repro.linalg.tiles import DenseTile, LowRankTile
from repro.matrix import BandTLRMatrix
from repro.runtime import (
    RecoveryManager,
    RecoveryPolicy,
    build_cholesky_graph,
    execute_graph,
    execute_graph_parallel,
)
from repro.runtime.resilience import build_manager
from repro.testing import FaultClause, FaultPlan
from repro.testing.faults import _fires
from repro.utils import (
    ConfigurationError,
    PoolExhaustedError,
    RuntimeSystemError,
    TransientFaultError,
)
from repro.utils.exceptions import FaultSpecError, TaskAbortedError

FAST = RecoveryPolicy(backoff_s=0.0)  # no backoff sleeps in unit tests


def _graph_for(matrix):
    grid = matrix.rank_grid()
    return build_cholesky_graph(
        matrix.ntiles,
        matrix.band_size,
        matrix.desc.tile_size,
        lambda i, j: int(max(grid[i, j], 1)),
    )


@pytest.fixture(scope="module")
def base_matrix(small_problem, rule8):
    """Compressed band-1 matrix shared by the chaos tests (copy to use)."""
    return BandTLRMatrix.from_problem(small_problem, rule8, band_size=1)


@pytest.fixture(scope="module")
def baseline_factor(base_matrix):
    """The fault-free factor every chaotic run must reproduce bitwise."""
    m = base_matrix.copy()
    execute_graph(_graph_for(m), m)
    return m.to_dense(lower_only=True)


# ----------------------------------------------------------------------
# Fault spec grammar
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_parse_round_trip(self):
        plan = FaultPlan.parse(
            "transient:gemm:0.05,nan:*:0.01,stall:trsm:0.1:0.5", seed=9
        )
        assert plan.seed == 9
        assert [c.kind for c in plan.clauses] == ["transient", "nan", "stall"]
        assert plan.clauses[0].kernel == "gemm"
        assert plan.clauses[1].kernel == "*"
        assert plan.clauses[2].param == 0.5

    def test_stall_gets_default_param(self):
        plan = FaultPlan.parse("stall:potrf:1.0")
        assert plan.clauses[0].param > 0

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "transient",
            "transient:gemm",
            "bogus:gemm:0.5",
            "transient:lu:0.5",
            "transient:gemm:1.5",
            "transient:gemm:-0.1",
            "transient:gemm:xyz",
            "stall:gemm:0.5:abc",
        ],
    )
    def test_invalid_specs_raise(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(spec)

    def test_clause_validation_direct(self):
        with pytest.raises(FaultSpecError):
            FaultClause("transient", "gemm", 2.0)

    def test_fault_spec_error_is_configuration_error(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("nonsense")


class TestDeterministicDraws:
    def test_fires_is_pure(self):
        from repro.runtime.task import TaskKind

        clause = FaultClause("transient", "gemm", 0.5)
        tid = (TaskKind.GEMM, 3, 2, 1)
        draws = [_fires(7, 0, clause, tid, 0) for _ in range(5)]
        assert len(set(draws)) == 1

    def test_seed_changes_draws(self):
        from repro.runtime.task import TaskKind

        clause = FaultClause("transient", "gemm", 0.5)
        tids = [(TaskKind.GEMM, m, n, k)
                for m in range(6) for n in range(m) for k in range(n)]
        a = [_fires(1, 0, clause, t, 0) for t in tids]
        b = [_fires(2, 0, clause, t, 0) for t in tids]
        assert a != b

    def test_rate_extremes(self):
        from repro.runtime.task import TaskKind

        tid = (TaskKind.POTRF, 0)
        assert _fires(0, 0, FaultClause("transient", "*", 1.0), tid, 0)
        assert not _fires(0, 0, FaultClause("transient", "*", 0.0), tid, 0)

    def test_injector_counts_and_exception_types(self):
        from repro.runtime.task import TaskKind

        inj = FaultPlan.parse("transient:potrf:1.0,oom:trsm:1.0").injector()
        with pytest.raises(TransientFaultError):
            inj.pre_dispatch((TaskKind.POTRF, 0), 0)
        with pytest.raises(PoolExhaustedError):
            inj.pre_dispatch((TaskKind.TRSM, 1, 0), 0)
        inj.pre_dispatch((TaskKind.SYRK, 1, 0), 0)  # no matching clause
        assert inj.counts == {"transient": 1, "oom": 1}
        assert inj.total == 2


# ----------------------------------------------------------------------
# Bitwise identity under recoverable faults
# ----------------------------------------------------------------------
class TestBitwiseRecovery:
    SPEC = "transient:*:0.08,nan:gemm:0.05,oom:trsm:0.05"

    def test_serial_executor(self, base_matrix, baseline_factor):
        m = base_matrix.copy()
        plan = FaultPlan.parse(self.SPEC, seed=3)
        rep = execute_graph(_graph_for(m), m, faults=plan, recovery=FAST)
        assert rep.resilience.retries > 0
        assert rep.resilience.recoveries > 0
        assert np.array_equal(m.to_dense(lower_only=True), baseline_factor)

    @pytest.mark.parallel
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_parallel_executor_any_width(
        self, base_matrix, baseline_factor, workers
    ):
        m = base_matrix.copy()
        plan = FaultPlan.parse(self.SPEC, seed=3)
        rep = execute_graph_parallel(
            _graph_for(m), m, n_workers=workers, faults=plan, recovery=FAST
        )
        assert rep.resilience.retries > 0
        assert np.array_equal(m.to_dense(lower_only=True), baseline_factor)

    @pytest.mark.parallel
    def test_retry_counts_match_across_executors(
        self, base_matrix, baseline_factor
    ):
        plan = FaultPlan.parse(self.SPEC, seed=3)
        seq, par = base_matrix.copy(), base_matrix.copy()
        r1 = execute_graph(_graph_for(seq), seq, faults=plan, recovery=FAST)
        r2 = execute_graph_parallel(
            _graph_for(par), par, n_workers=3, faults=plan, recovery=FAST
        )
        assert r1.resilience.retries == r2.resilience.retries
        assert r1.resilience.recoveries == r2.resilience.recoveries

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        rate=st.floats(min_value=0.01, max_value=0.15),
        kind=st.sampled_from(["transient", "nan", "oom"]),
    )
    def test_property_any_recoverable_plan(
        self, base_matrix, baseline_factor, seed, rate, kind
    ):
        # Deep retry budget: at rate 0.15 a task occasionally fails 4
        # consecutive draws, which would legitimately exhaust the
        # default budget of 3 (covered by the exhaustion tests below).
        deep = RecoveryPolicy(max_retries=12, backoff_s=0.0)
        m = base_matrix.copy()
        plan = FaultPlan(
            clauses=(FaultClause(kind, "*", rate),), seed=seed
        )
        execute_graph(_graph_for(m), m, faults=plan, recovery=deep)
        assert np.array_equal(m.to_dense(lower_only=True), baseline_factor)

    def test_tlr_cholesky_routes_faults(self, base_matrix, baseline_factor):
        m = base_matrix.copy()
        rep = tlr_cholesky(
            m, faults=FaultPlan.parse(self.SPEC, seed=3), recovery=FAST
        )
        assert rep.resilience is not None
        assert np.array_equal(m.to_dense(lower_only=True), baseline_factor)


# ----------------------------------------------------------------------
# Retry budget, NPD recovery, densify fallback, watchdog
# ----------------------------------------------------------------------
class TestRecoveryPolicies:
    def test_retry_budget_exhaustion_serial(self, base_matrix):
        m = base_matrix.copy()
        plan = FaultPlan.parse("transient:potrf:1.0")  # fires every attempt
        with pytest.raises(TaskAbortedError):
            execute_graph(_graph_for(m), m, faults=plan, recovery=FAST)

    @pytest.mark.parallel
    def test_retry_budget_exhaustion_parallel_wrapped(self, base_matrix):
        m = base_matrix.copy()
        plan = FaultPlan.parse("transient:potrf:1.0")
        with pytest.raises(RuntimeSystemError) as ei:
            execute_graph_parallel(
                _graph_for(m), m, n_workers=2, faults=plan, recovery=FAST
            )
        assert isinstance(ei.value.__cause__, TaskAbortedError)

    def test_backoff_is_capped_exponential(self):
        policy = RecoveryPolicy(backoff_s=0.01, backoff_cap_s=0.04)
        delays = [
            min(policy.backoff_cap_s, policy.backoff_s * 2 ** (r - 1))
            for r in (1, 2, 3, 4)
        ]
        assert delays == [0.01, 0.02, 0.04, 0.04]

    def test_npd_recovery_via_diagonal_shift(self, rule8):
        rng = np.random.default_rng(0)
        b = rng.standard_normal((128, 128))
        a = b @ b.T / 128
        w = np.linalg.eigvalsh(a)
        a -= (w[0] + 1e-9) * np.eye(128)  # smallest eigenvalue == -1e-9

        m = BandTLRMatrix.from_dense(a.copy(), 32, rule8, band_size=4)
        from repro.utils import NotPositiveDefiniteError

        with pytest.raises(NotPositiveDefiniteError):
            tlr_cholesky(m)

        m2 = BandTLRMatrix.from_dense(a.copy(), 32, rule8, band_size=4)
        rep = tlr_cholesky(m2, recovery=RecoveryPolicy(backoff_s=0.0))
        assert rep.resilience.npd_shifts >= 1
        # The shifted factor solves a nearby SPD problem.
        ell = m2.to_dense(lower_only=True)
        assert np.isfinite(ell).all()
        shift_bound = 1e-8 * 10 ** rep.resilience.npd_shifts
        assert np.linalg.norm(ell @ ell.T - a) / np.linalg.norm(a) < shift_bound

    def test_npd_not_recovered_when_disabled(self, rule8):
        a = -np.eye(128)
        m = BandTLRMatrix.from_dense(a, 32, rule8, band_size=4)
        from repro.utils import NotPositiveDefiniteError

        with pytest.raises(NotPositiveDefiniteError):
            tlr_cholesky(
                m, recovery=RecoveryPolicy(recover_npd=False, backoff_s=0.0)
            )

    def test_densify_fallback_on_compression_error(self, base_matrix):
        from repro.runtime.task import Task, TaskKind
        from repro.utils import CompressionError

        matrix = base_matrix.copy()
        dest = next(
            ij for ij, t in matrix.tiles.items() if isinstance(t, LowRankTile)
        )
        reference = matrix.tile(*dest).to_dense().copy()
        manager = RecoveryManager(FAST)
        task = Task(
            tid=(TaskKind.GEMM, *dest, 0),
            kind=TaskKind.GEMM,
            kernel=None,
            flops=0.0,
            out_tile=dest,
        )

        def compute():
            if isinstance(matrix.tile(*dest), LowRankTile):
                raise CompressionError("cannot certify the accuracy envelope")
            return matrix.tile(*dest), None

        manager.run(task, matrix, compute)
        assert manager.report.densify_fallbacks == 1
        assert manager.report.recoveries == 1
        assert isinstance(matrix.tile(*dest), DenseTile)
        np.testing.assert_allclose(
            matrix.tile(*dest).to_dense(), reference, atol=1e-12
        )

    def test_densify_fallback_only_once(self, base_matrix):
        from repro.runtime.task import Task, TaskKind
        from repro.utils import CompressionError

        matrix = base_matrix.copy()
        dest = next(
            ij for ij, t in matrix.tiles.items() if isinstance(t, LowRankTile)
        )
        manager = RecoveryManager(FAST)
        task = Task(
            tid=(TaskKind.GEMM, *dest, 0), kind=TaskKind.GEMM,
            kernel=None, flops=0.0, out_tile=dest,
        )

        def always_fails():
            raise CompressionError("still broken after densification")

        with pytest.raises(CompressionError):
            manager.run(task, matrix, always_fails)

    @pytest.mark.parallel
    def test_watchdog_requeues_stalled_task(
        self, base_matrix, baseline_factor
    ):
        from repro.runtime.task import TaskKind

        class StallOnce:
            """Duck-typed injector: first POTRF(0) attempt hangs 30 s."""

            def __init__(self):
                self.stalled = threading.Event()

            def pre_dispatch(self, tid, attempt, cancel_event=None):
                if tid == (TaskKind.POTRF, 0) and attempt == 0:
                    self.stalled.set()
                    if cancel_event is not None and cancel_event.wait(30.0):
                        from repro.utils import StalledTaskError

                        raise StalledTaskError(f"stalled {tid}", tid)

            def corrupt_output(self, tid, attempt, tile):
                return False

        m = base_matrix.copy()
        inj = StallOnce()
        t0 = time.perf_counter()
        rep = execute_graph_parallel(
            _graph_for(m), m, n_workers=2,
            faults=inj,
            recovery=RecoveryPolicy(backoff_s=0.0, watchdog_timeout_s=0.15),
        )
        elapsed = time.perf_counter() - t0
        assert inj.stalled.is_set()
        assert rep.resilience.watchdog_requeues >= 1
        assert rep.resilience.retries >= 1
        assert elapsed < 20.0  # nowhere near the 30 s stall
        assert np.array_equal(m.to_dense(lower_only=True), baseline_factor)

    def test_build_manager_accepts_all_forms(self):
        assert build_manager(None, None) is None
        assert build_manager("transient:gemm:0.1", None) is not None
        plan = FaultPlan.parse("nan:*:0.1")
        assert build_manager(plan, None).injector is not None
        inj = plan.injector()
        assert build_manager(inj, None).injector is inj
        mgr = build_manager(None, RecoveryPolicy(max_retries=7))
        assert mgr.policy.max_retries == 7 and mgr.injector is None


# ----------------------------------------------------------------------
# Cancellation semantics (the BaseException audit)
# ----------------------------------------------------------------------
class TestCancellation:
    class _RaiseOn:
        """Duck-typed injector raising ``exc`` at one task's dispatch."""

        def __init__(self, tid, exc):
            self.tid, self.exc = tid, exc

        def pre_dispatch(self, tid, attempt, cancel_event=None):
            if tid == self.tid:
                raise self.exc

        def corrupt_output(self, tid, attempt, tile):
            return False

    @pytest.mark.parallel
    @pytest.mark.parametrize("exc_type", [KeyboardInterrupt, SystemExit])
    def test_interrupts_propagate_unwrapped(self, base_matrix, exc_type):
        from repro.runtime.task import TaskKind

        m = base_matrix.copy()
        inj = self._RaiseOn((TaskKind.POTRF, 2), exc_type())
        with pytest.raises(exc_type):
            execute_graph_parallel(
                _graph_for(m), m, n_workers=2, faults=inj, recovery=FAST
            )

    @pytest.mark.parallel
    def test_ordinary_errors_still_wrapped(self, base_matrix):
        from repro.runtime.task import TaskKind

        m = base_matrix.copy()
        inj = self._RaiseOn((TaskKind.POTRF, 2), ValueError("kernel blew up"))
        with pytest.raises(RuntimeSystemError) as ei:
            execute_graph_parallel(
                _graph_for(m), m, n_workers=2, faults=inj, recovery=FAST
            )
        assert isinstance(ei.value.__cause__, ValueError)


# ----------------------------------------------------------------------
# Observability integration + the paper-scale acceptance run (b = 250)
# ----------------------------------------------------------------------
class TestObsIntegration:
    def test_counters_match_report(self, base_matrix, baseline_factor):
        m = base_matrix.copy()
        inj = FaultPlan.parse(
            "transient:*:0.08,nan:gemm:0.05", seed=3
        ).injector()
        with obs.observe() as run:
            rep = execute_graph(_graph_for(m), m, faults=inj, recovery=FAST)
        retried = sum(c.value for c in run.metrics.find("task_retried"))
        recovered = sum(c.value for c in run.metrics.find("task_recovered"))
        injected = sum(c.value for c in run.metrics.find("fault_injected"))
        assert retried == rep.resilience.retries > 0
        assert recovered == rep.resilience.recoveries > 0
        assert injected == inj.total > 0

    @pytest.mark.parallel
    def test_acceptance_b250_transient_faults(self):
        """ISSUE acceptance: >=5% transient faults at b=250, parallel
        executor, bitwise-equal factor, matching obs counters."""
        problem = st_3d_exp_problem(1500, 250, seed=11)
        rule = TruncationRule(eps=1e-8)
        base = BandTLRMatrix.from_problem(problem, rule, band_size=1)
        g = _graph_for(base)

        clean = base.copy()
        execute_graph_parallel(g, clean, n_workers=4)
        want = clean.to_dense(lower_only=True)

        chaotic = base.copy()
        inj = FaultPlan.parse("transient:*:0.05", seed=2021).injector()
        with obs.observe() as run:
            rep = execute_graph_parallel(
                g, chaotic, n_workers=4, faults=inj, recovery=FAST
            )
        assert inj.counts.get("transient", 0) > 0
        assert np.array_equal(chaotic.to_dense(lower_only=True), want)
        retried = sum(c.value for c in run.metrics.find("task_retried"))
        recovered = sum(c.value for c in run.metrics.find("task_recovered"))
        assert retried == rep.resilience.retries
        assert recovered == rep.resilience.recoveries
        assert rep.resilience.retries >= rep.resilience.recoveries > 0
