"""The observability layer: tracer, metrics, exporters, reports, CLI."""

import json
import threading

import pytest

from repro import TruncationRule, obs
from repro.matrix import BandTLRMatrix
from repro.obs import MetricsRegistry, Observation, Tracer
from repro.obs.exporters import prometheus_text, write_chrome_trace
from repro.obs.report import load_summary, render_report
from repro.obs.tracer import NULL_SPAN


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_records_interval(self):
        tr = Tracer()
        with tr.span("work", "phase", size=3):
            pass
        (rec,) = tr.spans
        assert rec.name == "work"
        assert rec.category == "phase"
        assert rec.attrs == {"size": 3}
        assert rec.end >= rec.start >= 0.0
        assert rec.duration == rec.end - rec.start

    def test_nesting_depth_and_parent(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        inner, outer = tr.spans  # inner closes first
        assert inner.name == "inner"
        assert inner.depth == 1 and inner.parent == "outer"
        assert outer.depth == 0 and outer.parent is None

    def test_stack_unwinds_on_exception(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("outer"):
                with tr.span("inner"):
                    raise RuntimeError("boom")
        # Both spans recorded and the per-thread stack is empty again.
        assert [r.name for r in tr.spans] == ["inner", "outer"]
        with tr.span("after"):
            pass
        assert tr.spans[-1].depth == 0

    def test_thread_attribution(self):
        tr = Tracer()

        def work():
            with tr.span("task", "task"):
                pass

        threads = [
            threading.Thread(target=work, name=f"obs-worker-{i}")
            for i in range(3)
        ]
        with tr.span("main_span"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        names = {rec.thread for rec in tr.spans}
        assert {"obs-worker-0", "obs-worker-1", "obs-worker-2"} <= names
        assert all(rec.thread_id != 0 for rec in tr.spans)
        assert set(tr.threads()) == names

    def test_events_and_by_category(self):
        tr = Tracer()
        with tr.span("a", "x"):
            pass
        with tr.span("b", "x"):
            pass
        tr.event("marker", "notes", detail=1)
        count, total = tr.by_category()["x"]
        assert count == 2 and total >= 0.0
        (ev,) = tr.events
        assert ev.name == "marker" and ev.attrs == {"detail": 1}


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_and_identity(self):
        reg = MetricsRegistry()
        reg.counter("flops", kernel="(1)-GEMM").inc(10.0)
        reg.counter("flops", kernel="(1)-GEMM").inc(5.0)
        reg.counter("flops", kernel="(6)-GEMM").inc(1.0)
        c = reg.counter("flops", kernel="(1)-GEMM")
        assert c.value == 15.0 and c.increments == 2
        assert len(reg.find("flops")) == 2

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_gauge_watermarks(self):
        reg = MetricsRegistry()
        g = reg.gauge("level")
        for v in (3.0, 7.0, 2.0):
            g.set(v)
        assert (g.value, g.min, g.max) == (2.0, 2.0, 7.0)

    def test_histogram_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("rank", stage="assembly")
        for v in [4, 4, 8, 16]:
            h.observe(v)
        assert h.count == 4 and h.sum == 32.0
        assert h.value_counts() == {4.0: 2, 8.0: 1, 16.0: 1}
        assert h.bucket_counts([4, 8, 16]) == [2, 3, 4]  # cumulative
        assert h.percentile(100) == 16
        snap = h.snapshot()
        assert snap["count"] == 4 and snap["counts"] == {"4": 2, "8": 1, "16": 1}

    def test_series_uses_registry_clock(self):
        reg = MetricsRegistry()
        s = reg.series("depth")
        s.sample(1)
        s.sample(2)
        (t1, v1), (t2, v2) = s.samples
        assert 0.0 <= t1 <= t2 and (v1, v2) == (1.0, 2.0)

    def test_thread_safe_aggregation(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(500):
                reg.counter("hits").inc()
                reg.histogram("vals").observe(1.0)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("hits").value == 4000
        assert reg.histogram("vals").count == 4000

    def test_snapshot_groups_by_kind(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1)
        reg.histogram("h").observe(1)
        reg.series("s").sample(1)
        snap = reg.snapshot()
        assert [len(snap[k]) for k in ("counters", "gauges", "histograms", "series")] == [1, 1, 1, 1]
        json.dumps(snap)  # JSON-serializable end to end


# ----------------------------------------------------------------------
# Module-level helpers / disabled path
# ----------------------------------------------------------------------
class TestActiveObservation:
    def test_disabled_is_noop(self):
        assert not obs.enabled()
        assert obs.active() is None
        # The disabled span is the shared singleton — no allocation.
        assert obs.span("anything", "x", a=1) is NULL_SPAN
        assert obs.span("other") is NULL_SPAN
        # Metric helpers silently drop.
        obs.counter_add("c", 1)
        obs.gauge_set("g", 1)
        obs.histogram_observe("h", 1)
        obs.sample("s", 1)
        obs.event("e")
        obs.kernel_observed("(1)-GEMM", 100.0)
        obs.pool_observed(None, pool="x")

    def test_observe_installs_and_restores(self):
        with obs.observe(meta={"k": "v"}) as run:
            assert obs.enabled() and obs.active() is run
            with obs.span("phase1", "phase"):
                obs.counter_add("c", 2, kind="a")
        assert not obs.enabled()
        assert run.meta == {"k": "v"}
        assert [r.name for r in run.tracer.spans] == ["phase1"]
        assert run.metrics.counter("c", kind="a").value == 2
        assert run.wall_s > 0

    def test_observe_nests_innermost_wins(self):
        with obs.observe() as outer:
            with obs.observe() as inner:
                obs.counter_add("c", 1)
            obs.counter_add("c", 10)
        assert inner.metrics.counter("c").value == 1
        assert outer.metrics.counter("c").value == 10

    def test_kernel_observed_shape(self):
        with obs.observe() as run:
            obs.kernel_observed("(6)-GEMM", 123.0)
            obs.kernel_observed("(6)-GEMM", 7.0)
        assert run.metrics.counter("kernel_flops", kernel="(6)-GEMM").value == 130.0
        assert run.metrics.counter("kernel_invocations", kernel="(6)-GEMM").value == 2


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExporters:
    def _observation(self):
        run = Observation(meta={"case": "unit"})
        with run.tracer.span("outer", "phase", n=2):
            with run.tracer.span("inner", "task"):
                pass
        run.tracer.event("tick", "notes")
        run.metrics.counter("kernel_flops", kernel="(1)-GEMM").inc(100.0)
        run.metrics.gauge("makespan_s", executor="parallel").set(1.5)
        for v in (4, 8, 8):
            run.metrics.histogram("tile_rank", stage="assembly").observe(v)
        run.metrics.series("memory_elements").sample(10)
        return run

    def test_chrome_trace_from_tracer(self, tmp_path):
        run = self._observation()
        out = write_chrome_trace(run.tracer, tmp_path / "trace")
        doc = json.loads(out.read_text())
        assert out.name == "trace.json"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X", "i"} <= phases
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in spans} == {"outer", "inner"}
        assert all(e["dur"] >= 0 for e in spans)

    def test_chrome_trace_from_result_object(self, tmp_path):
        class FakeResult:
            trace = [(("GEMM", 1, 0, 0), 0, 0.0, 1.0), (("POTRF", 0), 0, 1.0, 2.0)]
            makespan = 2.0
            nodes = 1
            cores_per_node = 1

        out = write_chrome_trace(FakeResult(), tmp_path / "t.json")
        doc = json.loads(out.read_text())
        assert len(doc["traceEvents"]) == 2
        assert doc["otherData"]["makespan_s"] == 2.0

        class NoTrace:
            trace = None

        with pytest.raises(ValueError):
            write_chrome_trace(NoTrace(), tmp_path / "n.json")

    def test_events_jsonl_roundtrip(self, tmp_path):
        run = self._observation()
        out = obs.write_events_jsonl(run.tracer, tmp_path / "events.jsonl")
        records = [json.loads(line) for line in out.read_text().splitlines()]
        kinds = [r["type"] for r in records]
        assert kinds.count("span") == 2 and kinds.count("event") == 1
        inner = next(r for r in records if r["name"] == "inner")
        assert inner["depth"] == 1 and inner["parent"] == "outer"

    def test_prometheus_text_format(self):
        run = self._observation()
        text = prometheus_text(run.metrics)
        assert "# TYPE repro_kernel_flops_total counter" in text
        assert 'repro_kernel_flops_total{kernel="(1)-GEMM"} 100' in text
        assert 'repro_makespan_s{executor="parallel"} 1.5' in text
        # Histogram: cumulative buckets + +Inf + sum/count.
        assert 'repro_tile_rank_bucket{stage="assembly",le="4"} 1' in text
        assert 'repro_tile_rank_bucket{stage="assembly",le="8"} 3' in text
        assert 'repro_tile_rank_bucket{stage="assembly",le="+Inf"} 3' in text
        assert 'repro_tile_rank_count{stage="assembly"} 3' in text
        # Series exports its last sample as a gauge.
        assert "repro_memory_elements 10" in text

    def test_write_summary_and_report_render(self, tmp_path):
        run = self._observation()
        paths = run.write(tmp_path / "run")
        assert sorted(p.name for p in paths.values()) == [
            "events.jsonl", "metrics.prom", "summary.json", "trace.json",
        ]
        summary = load_summary(tmp_path / "run")
        assert summary["meta"] == {"case": "unit"}
        assert summary["spans"]["count"] == 2
        text = render_report(summary)
        for section in ("repro run report", "time by span category",
                        "modelled flops", "rank spectrum", "memory"):
            assert section in text

    def test_load_summary_missing(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_summary(tmp_path / "nope")


# ----------------------------------------------------------------------
# Integration: a real factorization under observation
# ----------------------------------------------------------------------
class TestFactorizationTelemetry:
    @pytest.fixture(scope="class")
    def observed_run(self, small_problem):
        from repro import TLRSolver

        with obs.observe(meta={"case": "integration"}) as run:
            solver = TLRSolver.from_problem(
                small_problem, accuracy=1e-8, band_size=2, n_workers=2
            )
            solver.factorize(n_workers=2)
        return run, solver

    def test_kernel_flops_match_report(self, observed_run):
        run, solver = observed_run
        total = sum(c.value for c in run.metrics.find("kernel_flops"))
        assert total == pytest.approx(solver.report.counter.total)
        calls = sum(c.value for c in run.metrics.find("kernel_invocations"))
        assert calls > 0
        # Every flop-counter class that fired has a matching invocation count.
        flop_kernels = {c.labels["kernel"] for c in run.metrics.find("kernel_flops")}
        call_kernels = {c.labels["kernel"]
                        for c in run.metrics.find("kernel_invocations")}
        assert flop_kernels == call_kernels

    def test_rank_spectrum_stages(self, observed_run):
        run, solver = observed_run
        stages = {h.labels["stage"] for h in run.metrics.find("tile_rank")}
        assert {"assembly", "compress", "factorized"} <= stages
        from repro.linalg.tiles import LowRankTile

        final = run.metrics.histogram("tile_rank", stage="factorized")
        ranks = [t.rank for t in solver.matrix.tiles.values()
                 if isinstance(t, LowRankTile)]
        assert final.count == len(ranks)
        assert max(final.values) == max(ranks)

    def test_spans_cover_pipeline(self, observed_run):
        run, _ = observed_run
        cats = run.tracer.by_category()
        assert {"phase", "task", "assembly"} <= set(cats)
        names = {r.name for r in run.tracer.spans}
        assert {"from_problem", "assemble", "tlr_cholesky"} <= names
        # Parallel tasks actually ran on the worker threads.
        task_threads = {r.thread for r in run.tracer.spans
                        if r.category == "task"}
        assert len(task_threads) >= 1

    def test_memory_and_executor_metrics(self, observed_run):
        run, _ = observed_run
        assert run.metrics.series("memory_elements").samples
        assert run.metrics.gauge(
            "memory_peak_elements", stat="tiles").value > 0
        occ = run.metrics.find("worker_occupancy")
        assert len(occ) == 2 and all(0 <= g.value <= 1.0 for g in occ)
        assert run.metrics.counter(
            "tasks_executed", executor="parallel").value > 0
        assert run.metrics.counter(
            "workpool_items", label="build_tile").value > 0

    def test_disabled_run_records_nothing(self, small_problem):
        probe = Observation()
        matrix = BandTLRMatrix.from_problem(
            small_problem, TruncationRule(eps=1e-8), band_size=2
        )
        from repro.core import tlr_cholesky

        tlr_cholesky(matrix)
        # Nothing leaked into a non-installed observation.
        assert not probe.tracer.spans
        assert not probe.metrics.all()
        assert not obs.enabled()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_execute_obs_then_report(self, tmp_path, capsys):
        from repro.__main__ import main

        outdir = tmp_path / "run"
        rc = main([
            "execute", "--n", "400", "--tile", "100", "--band", "2",
            "--workers", "2", "--obs", str(outdir),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "observability artifacts" in out
        assert (outdir / "summary.json").exists()
        assert (outdir / "metrics.prom").exists()

        rc = main(["report", str(outdir), "--width", "72"])
        assert rc == 0
        report = capsys.readouterr().out
        assert "modelled flops by kernel class" in report
        assert "rank spectrum" in report
        assert "dense-band" in report  # the dense-vs-LR split line

    def test_report_missing_dir_raises(self, tmp_path):
        from repro.__main__ import main

        with pytest.raises(FileNotFoundError):
            main(["report", str(tmp_path / "absent")])
