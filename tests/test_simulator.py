"""Unit tests for the discrete-event distributed-machine simulator."""

import numpy as np
import pytest

from repro.distribution import BandDistribution, ProcessGrid, TwoDBlockCyclic
from repro.linalg import KernelClass
from repro.runtime import MachineSpec, build_cholesky_graph, simulate
from repro.utils import SchedulingError

RANK = lambda i, j: max(4, 64 // (abs(i - j) + 1))


@pytest.fixture(scope="module")
def graph():
    return build_cholesky_graph(12, 3, 512, RANK)


@pytest.fixture(scope="module")
def machine():
    return MachineSpec(nodes=4, cores_per_node=4)


@pytest.fixture(scope="module")
def dist():
    return TwoDBlockCyclic(ProcessGrid.squarest(4))


class TestBasicInvariants:
    def test_makespan_positive(self, graph, machine, dist):
        res = simulate(graph, dist, machine)
        assert res.makespan > 0

    def test_all_work_accounted(self, graph, machine, dist):
        res = simulate(graph, dist, machine)
        assert res.total_flops == pytest.approx(graph.total_flops())

    def test_busy_bounded_by_capacity(self, graph, machine, dist):
        res = simulate(graph, dist, machine)
        capacity = machine.cores_per_node * res.makespan
        assert np.all(res.busy <= capacity + 1e-9)

    def test_occupancy_in_unit_interval(self, graph, machine, dist):
        res = simulate(graph, dist, machine)
        assert np.all(res.occupancy >= 0) and np.all(res.occupancy <= 1 + 1e-12)

    def test_deterministic(self, graph, machine, dist):
        a = simulate(graph, dist, machine)
        b = simulate(graph, dist, machine)
        assert a.makespan == b.makespan
        np.testing.assert_array_equal(a.busy, b.busy)

    def test_mismatched_processes_rejected(self, graph, machine):
        with pytest.raises(SchedulingError):
            simulate(graph, TwoDBlockCyclic(ProcessGrid(2, 4)), machine)


class TestPanelTimes:
    def test_monotone_panel_release(self, graph, machine, dist):
        res = simulate(graph, dist, machine)
        pd = res.panel_done
        assert all(pd[i] <= pd[i + 1] + 1e-12 for i in range(len(pd) - 1))

    def test_potrf_before_panel_done(self, graph, machine, dist):
        res = simulate(graph, dist, machine)
        for k in range(graph.ntiles - 1):
            assert res.potrf_done[k] <= res.panel_done[k] + 1e-12

    def test_last_panel_at_makespan_or_before(self, graph, machine, dist):
        res = simulate(graph, dist, machine)
        assert res.panel_done[-1] <= res.makespan + 1e-12


class TestScalingBehaviour:
    def test_more_cores_not_slower(self, graph, dist):
        t1 = simulate(graph, dist, MachineSpec(nodes=4, cores_per_node=1)).makespan
        t8 = simulate(graph, dist, MachineSpec(nodes=4, cores_per_node=8)).makespan
        assert t8 <= t1 * 1.001

    def test_single_core_serializes(self, graph):
        """With one process and one core, makespan == total kernel time."""
        m = MachineSpec(nodes=1, cores_per_node=1)
        d = TwoDBlockCyclic(ProcessGrid(1, 1))
        res = simulate(graph, d, m)
        assert res.busy[0] == pytest.approx(res.makespan, rel=1e-9)

    def test_faster_network_not_slower(self, graph, dist):
        slow = MachineSpec(nodes=4, cores_per_node=4, bandwidth_Bps=1e8)
        fast = MachineSpec(nodes=4, cores_per_node=4, bandwidth_Bps=1e11)
        assert (
            simulate(graph, dist, fast).makespan
            <= simulate(graph, dist, slow).makespan * 1.001
        )


class TestCommunication:
    def test_local_edges_only_on_single_process(self, graph):
        m = MachineSpec(nodes=1, cores_per_node=4)
        res = simulate(graph, TwoDBlockCyclic(ProcessGrid(1, 1)), m)
        assert res.comm.remote_edges == 0
        assert res.comm.messages == 0

    def test_remote_edges_with_multiple_processes(self, graph, machine, dist):
        res = simulate(graph, dist, machine)
        assert res.comm.remote_edges > 0
        assert res.comm.messages > 0
        assert res.comm.bytes_sent > 0

    def test_broadcast_dedup(self, graph, machine, dist):
        """Messages are per (producer, destination process), never per edge."""
        res = simulate(graph, dist, machine)
        assert res.comm.messages <= res.comm.remote_edges

    def test_flat_broadcast_not_faster_than_tree(self, graph, dist):
        tree = MachineSpec(nodes=4, cores_per_node=4, broadcast="tree")
        flat = MachineSpec(nodes=4, cores_per_node=4, broadcast="flat")
        rt = simulate(graph, dist, tree)
        rf = simulate(graph, dist, flat)
        # Same message counts; timing may differ.
        assert rt.comm.messages == rf.comm.messages


class TestZeroCostKernels:
    def test_no_tlr_gemm_never_slower(self, graph, machine, dist):
        """Fig. 10's No_TLR_GEMM run: low-rank updates become free."""
        full = simulate(graph, dist, machine)
        crit = simulate(
            graph,
            dist,
            machine,
            zero_cost_kernels={KernelClass.GEMM_LR, KernelClass.GEMM_LR_DENSE},
        )
        assert crit.makespan <= full.makespan * (1 + 1e-9)

    def test_no_tlr_gemm_faster_when_ranks_high(self, machine, dist):
        """With high ranks the LR updates dominate and removing them wins."""
        g = build_cholesky_graph(12, 1, 512, lambda i, j: 200)
        full = simulate(g, dist, machine)
        crit = simulate(
            g,
            dist,
            machine,
            zero_cost_kernels={KernelClass.GEMM_LR, KernelClass.GEMM_LR_DENSE},
        )
        assert crit.makespan < 0.5 * full.makespan

    def test_zero_everything_leaves_only_comm(self, graph, machine, dist):
        res = simulate(graph, dist, machine, zero_cost_kernels=set(KernelClass))
        full = simulate(graph, dist, machine)
        assert 0.0 < res.makespan < full.makespan
        assert np.all(res.busy == 0.0)


class TestTrace:
    def test_trace_collection(self, graph, machine, dist):
        res = simulate(graph, dist, machine, collect_trace=True)
        assert res.trace is not None
        assert len(res.trace) == graph.n_tasks
        for tid, proc, start, end in res.trace[:50]:
            assert end >= start >= 0.0
            assert 0 <= proc < machine.nodes

    def test_no_trace_by_default(self, graph, machine, dist):
        assert simulate(graph, dist, machine).trace is None


class TestRecursiveGraphSimulation:
    def test_expansion_speeds_up_band_dominated_run(self):
        rank = lambda i, j: 6
        g = build_cholesky_graph(10, 3, 1024, rank)
        ge = build_cholesky_graph(10, 3, 1024, rank, recursive_split=4)
        m = MachineSpec(nodes=1, cores_per_node=16)
        d = TwoDBlockCyclic(ProcessGrid(1, 1))
        t_plain = simulate(g, d, m).makespan
        t_rec = simulate(ge, d, m).makespan
        assert t_rec < t_plain

    def test_band_distribution_works_with_expansion(self):
        g = build_cholesky_graph(10, 3, 512, RANK, recursive_split=2)
        m = MachineSpec(nodes=4, cores_per_node=4)
        res = simulate(g, BandDistribution(ProcessGrid.squarest(4), band_size=3), m)
        assert res.makespan > 0


class TestKernelBreakdown:
    def test_breakdown_sums_to_busy(self, graph, machine, dist):
        res = simulate(graph, dist, machine)
        total = sum(res.busy_by_kernel.values())
        assert total == pytest.approx(float(res.busy.sum()))

    def test_zero_cost_kernels_absent(self, graph, machine, dist):
        res = simulate(
            graph, dist, machine,
            zero_cost_kernels={KernelClass.GEMM_LR, KernelClass.GEMM_LR_DENSE},
        )
        assert KernelClass.GEMM_LR not in res.busy_by_kernel
        assert KernelClass.GEMM_LR_DENSE not in res.busy_by_kernel

    def test_band_graph_covers_all_ten_classes(self):
        g = build_cholesky_graph(12, 3, 512, RANK)
        m = MachineSpec(nodes=1, cores_per_node=2)
        d = TwoDBlockCyclic(ProcessGrid(1, 1))
        res = simulate(g, d, m)
        assert len(res.busy_by_kernel) == 10
