"""Unit tests for the Matérn kernel (Eq. 2) and its special cases."""

import numpy as np
import pytest

from repro.statistics import ST_3D_EXP, MaternParams, matern, matern_exponential
from repro.utils import ConfigurationError


class TestMaternParams:
    def test_defaults_are_st3dexp(self):
        assert ST_3D_EXP.as_tuple() == (1.0, 0.1, 0.5)

    @pytest.mark.parametrize("field", ["variance", "correlation_length", "smoothness"])
    def test_rejects_nonpositive(self, field):
        kwargs = {field: 0.0}
        with pytest.raises(ConfigurationError):
            MaternParams(**kwargs)


class TestSt3dExpReduction:
    def test_equals_decaying_exponential(self):
        """The paper: theta=(1, 0.1, 0.5) reduces Eq. 2 to exp(-r/0.1)."""
        r = np.linspace(0, 2, 101)
        np.testing.assert_allclose(matern(r, ST_3D_EXP), np.exp(-r / 0.1))

    def test_matches_general_bessel_branch(self):
        """Closed form at nu=0.5 equals the literal Eq. 2 evaluation."""
        r = np.linspace(0.01, 1.0, 50)
        closed = matern(r, MaternParams(1.0, 0.1, 0.5))
        bessel = matern(r, MaternParams(1.0, 0.1, 0.5000001))
        np.testing.assert_allclose(closed, bessel, rtol=1e-4)


class TestHalfIntegerForms:
    @pytest.mark.parametrize("nu", [1.5, 2.5])
    def test_closed_forms_match_bessel(self, nu):
        r = np.linspace(0.01, 0.5, 40)
        closed = matern(r, MaternParams(2.0, 0.2, nu))
        bessel = matern(r, MaternParams(2.0, 0.2, nu + 1e-7))
        np.testing.assert_allclose(closed, bessel, rtol=1e-4)


class TestGeneralProperties:
    @pytest.mark.parametrize("nu", [0.5, 0.8, 1.5, 2.5, 3.7])
    def test_value_at_zero_is_variance(self, nu):
        p = MaternParams(3.5, 0.1, nu)
        assert matern(np.array(0.0), p) == pytest.approx(3.5)

    @pytest.mark.parametrize("nu", [0.5, 1.2, 2.5])
    def test_monotone_decreasing(self, nu):
        r = np.linspace(0, 3, 200)
        c = matern(r, MaternParams(1.0, 0.1, nu))
        assert np.all(np.diff(c) <= 1e-12)

    def test_large_distance_underflow_is_zero(self):
        # K_nu underflows far in the tail; limit must be exactly 0, not NaN.
        c = matern(np.array([1e3]), MaternParams(1.0, 0.01, 1.3))
        assert c[0] == 0.0

    def test_rejects_negative_distance(self):
        with pytest.raises(ConfigurationError):
            matern(np.array([-0.1]))

    def test_positive_semidefinite_small_gram(self):
        """The Gram matrix of a valid covariance kernel must be PSD."""
        rng = np.random.default_rng(4)
        pts = rng.uniform(size=(40, 3))
        from repro.geometry import pairwise_distances

        for nu in (0.5, 1.5, 2.2):
            gram = matern(pairwise_distances(pts), MaternParams(1.0, 0.3, nu))
            eigs = np.linalg.eigvalsh(gram)
            assert eigs.min() > -1e-8

    def test_matern_exponential_helper(self):
        r = np.linspace(0, 1, 11)
        np.testing.assert_allclose(
            matern_exponential(r, 2.0, 0.25), 2.0 * np.exp(-r / 0.25)
        )

    def test_shape_preserved(self):
        r = np.zeros((3, 4))
        assert matern(r).shape == (3, 4)
