"""Property-based tests (hypothesis) on cross-cutting invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TruncationRule
from repro.analysis import RankModel
from repro.core import solve_spd, tlr_cholesky
from repro.distribution import BandDistribution, ProcessGrid
from repro.linalg import KernelClass
from repro.matrix import BandTLRMatrix, TileDescriptor
from repro.runtime import MachineSpec, build_cholesky_graph, simulate
from repro.runtime.graph import classify_gemm

pytestmark = pytest.mark.slow



def _structured_spd(n, seed, decay=2.0):
    """A synthetic SPD matrix with smoothly decaying off-diagonal blocks
    (data-sparse like a covariance, cheap to build)."""
    rng = np.random.default_rng(seed)
    x = np.sort(rng.uniform(size=n))
    a = np.exp(-np.abs(x[:, None] - x[None, :]) * decay)
    return a + 1e-6 * np.eye(n)


@given(
    n=st.sampled_from([60, 96, 128]),
    tile=st.sampled_from([16, 32]),
    band=st.integers(1, 4),
    seed=st.integers(0, 1000),
)
@settings(max_examples=15, deadline=None)
def test_property_factorization_backward_error(n, tile, band, seed):
    """Cholesky backward error tracks the truncation threshold for every
    band width on structured SPD matrices."""
    a = _structured_spd(n, seed)
    m = BandTLRMatrix.from_dense(a, tile, TruncationRule(eps=1e-9), band)
    tlr_cholesky(m)
    l = m.to_dense(lower_only=True)
    err = np.linalg.norm(l @ l.T - a) / np.linalg.norm(a)
    assert err < 1e-6


@given(
    n=st.sampled_from([60, 96]),
    tile=st.sampled_from([16, 32]),
    seed=st.integers(0, 1000),
)
@settings(max_examples=15, deadline=None)
def test_property_solve_roundtrip(n, tile, seed):
    """solve_spd inverts the factored operator within the accuracy."""
    a = _structured_spd(n, seed)
    m = BandTLRMatrix.from_dense(a, tile, TruncationRule(eps=1e-10), 1)
    tlr_cholesky(m)
    rng = np.random.default_rng(seed + 1)
    x_true = rng.standard_normal(n)
    x = solve_spd(m, a @ x_true)
    assert np.linalg.norm(x - x_true) / np.linalg.norm(x_true) < 1e-5


@given(
    nt=st.integers(2, 14),
    band=st.integers(1, 6),
    b=st.sampled_from([64, 128]),
    k=st.integers(1, 32),
)
@settings(max_examples=30, deadline=None)
def test_property_graph_flops_conserved_under_expansion(nt, band, b, k):
    """Recursive expansion preserves total flops and stays acyclic."""
    g = build_cholesky_graph(nt, band, b, lambda i, j: k)
    ge = build_cholesky_graph(nt, band, b, lambda i, j: k, recursive_split=2)
    ge.validate()
    assert abs(ge.total_flops() - g.total_flops()) <= 1e-6 * max(g.total_flops(), 1)
    assert ge.critical_path_flops() <= g.critical_path_flops() + 1e-6


@given(
    nt=st.integers(2, 12),
    band=st.integers(1, 5),
    nodes=st.sampled_from([1, 2, 4, 6]),
    cores=st.integers(1, 4),
    k=st.integers(1, 24),
)
@settings(max_examples=25, deadline=None)
def test_property_simulation_conservation(nt, band, nodes, cores, k):
    """Every simulated run completes all tasks, busy time equals the sum
    of kernel durations, and occupancy stays within [0, 1]."""
    g = build_cholesky_graph(nt, band, 64, lambda i, j: k)
    machine = MachineSpec(nodes=nodes, cores_per_node=cores)
    dist = BandDistribution(ProcessGrid.squarest(nodes), band_size=band)
    res = simulate(g, dist, machine)
    serial = sum(
        machine.rates.seconds(t.kernel, t.flops, 64, k) for t in g.tasks.values()
    )
    np.testing.assert_allclose(res.busy.sum(), serial, rtol=1e-9)
    # Makespan bounded by fully-serial compute plus every message's worst
    # tree-stage cost (a very loose but always-valid upper bound).
    depth = int(np.ceil(np.log2(nodes + 1)))
    comm_bound = depth * (
        res.comm.messages * machine.latency_s
        + res.comm.bytes_sent / machine.bandwidth_Bps
    )
    assert res.makespan <= serial + comm_bound + 1e-9
    assert np.all(res.occupancy <= 1.0 + 1e-12)
    assert res.panel_done[-1] <= res.makespan + 1e-12


@given(
    m=st.integers(2, 40),
    n=st.integers(1, 40),
    kk=st.integers(0, 39),
    band=st.integers(1, 8),
)
@settings(max_examples=60, deadline=None)
def test_property_gemm_classification_consistent_with_formats(m, n, kk, band):
    """classify_gemm always agrees with the band predicates of the three
    tiles involved."""
    # Build valid m > n > k.
    k = min(kk, n - 1, m - 2) if n >= 2 and m >= 3 else -1
    if k < 0 or not (m > n > k):
        return
    kind = classify_gemm(m, n, k, band)
    c_dense = (m - n) < band
    a_dense = (m - k) < band
    b_dense = (n - k) < band
    if kind is KernelClass.GEMM_DENSE:
        assert c_dense and a_dense and b_dense
    elif kind is KernelClass.GEMM_DENSE_LRD:
        assert c_dense and (a_dense != b_dense)
    elif kind is KernelClass.GEMM_DENSE_LRLR:
        assert c_dense and not a_dense and not b_dense
    elif kind is KernelClass.GEMM_LR_DENSE:
        assert not c_dense and not a_dense and b_dense
    else:
        assert not c_dense and not a_dense and not b_dense


@given(
    nt=st.integers(1, 20),
    band=st.integers(1, 8),
)
@settings(max_examples=50, deadline=None)
def test_property_band_counts_match_predicate(nt, band):
    """count_on_band agrees with brute-force enumeration."""
    desc = TileDescriptor(nt * 8, 8)
    brute = sum(
        1 for i in range(nt) for j in range(i + 1) if desc.on_band(i, j, band)
    )
    assert desc.count_on_band(band) == brute


@given(
    tile=st.sampled_from([64, 256, 1024]),
    k1_frac=st.floats(0.05, 0.6),
    alpha=st.floats(0.2, 1.5),
    i=st.integers(1, 200),
)
@settings(max_examples=50, deadline=None)
def test_property_rank_model_bounds(tile, k1_frac, alpha, i):
    """RankModel outputs always lie in [kmin, tile_size]."""
    m = RankModel(tile_size=tile, k1=k1_frac * tile, alpha=alpha, kmin=4)
    r = m.rank(i, 0)
    rf = m.final(i, 0)
    assert 4 <= r <= tile
    assert 4 <= rf <= tile
    assert rf >= r - 1  # growth model never shrinks below initial (rounding slack)
