"""Unit + property tests for the DTD (dynamic task discovery) frontend."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import KernelClass
from repro.runtime import MachineSpec, build_cholesky_graph, simulate
from repro.runtime.dtd import Access, TaskInserter, dtd_cholesky_graph
from repro.runtime.task import TaskKind
from repro.distribution import ProcessGrid, TwoDBlockCyclic
from repro.utils import SchedulingError


def _mk(ins, tid, accesses):
    ins.insert(
        tid, TaskKind.GEMM, KernelClass.GEMM_DENSE, 1.0, accesses
    )


class TestDiscoverySemantics:
    def test_read_after_write(self):
        ins = TaskInserter(4, 1, 8)
        _mk(ins, ("w",), [((0, 0), Access.WRITE)])
        _mk(ins, ("r",), [((0, 0), Access.READ), ((1, 0), Access.WRITE)])
        g = ins.seal()
        assert any(e.src == ("w",) for e in g.tasks[("r",)].deps)

    def test_write_after_read(self):
        ins = TaskInserter(4, 1, 8)
        _mk(ins, ("w0",), [((0, 0), Access.WRITE)])
        _mk(ins, ("r",), [((0, 0), Access.READ), ((1, 0), Access.WRITE)])
        _mk(ins, ("w1",), [((0, 0), Access.RW)])
        g = ins.seal()
        srcs = {e.src for e in g.tasks[("w1",)].deps}
        assert ("r",) in srcs  # WAR dependence
        assert ("w0",) in srcs  # plus the previous writer

    def test_independent_reads_unordered(self):
        ins = TaskInserter(4, 1, 8)
        _mk(ins, ("w",), [((0, 0), Access.WRITE)])
        _mk(ins, ("r1",), [((0, 0), Access.READ), ((1, 0), Access.WRITE)])
        _mk(ins, ("r2",), [((0, 0), Access.READ), ((2, 0), Access.WRITE)])
        g = ins.seal()
        assert not any(e.src == ("r1",) for e in g.tasks[("r2",)].deps)

    def test_write_required(self):
        ins = TaskInserter(4, 1, 8)
        with pytest.raises(SchedulingError, match="WRITE"):
            _mk(ins, ("r",), [((0, 0), Access.READ)])

    def test_sealed_rejects_insert(self):
        ins = TaskInserter(4, 1, 8)
        _mk(ins, ("w",), [((0, 0), Access.WRITE)])
        ins.seal()
        with pytest.raises(SchedulingError):
            _mk(ins, ("w2",), [((0, 0), Access.WRITE)])

    def test_rw_chain_sequential(self):
        ins = TaskInserter(4, 1, 8)
        for i in range(4):
            _mk(ins, (f"t{i}",), [((0, 0), Access.RW)])
        g = ins.seal()
        order = g.topological_order()
        assert order == [(f"t{i}",) for i in range(4)]


class TestCholeskyEquivalence:
    """DTD and PTG must unfold the same Cholesky dataflow."""

    @pytest.mark.parametrize("nt,band", [(5, 1), (6, 3), (4, 4)])
    def test_same_tasks_and_costs(self, nt, band):
        rank = lambda i, j: max(4, 20 - (i - j))
        g_ptg = build_cholesky_graph(nt, band, 64, rank)
        g_dtd = dtd_cholesky_graph(nt, band, 64, rank)
        assert set(g_ptg.tasks) == set(g_dtd.tasks)
        for tid in g_ptg.tasks:
            assert g_ptg.tasks[tid].kernel is g_dtd.tasks[tid].kernel
            assert g_ptg.tasks[tid].flops == pytest.approx(g_dtd.tasks[tid].flops)

    @pytest.mark.parametrize("nt,band", [(5, 1), (6, 3)])
    def test_same_transitive_dataflow(self, nt, band):
        """Edge sets may differ in redundant ordering edges; the transitive
        closure (what-must-run-before-what) must be identical."""
        import networkx as nx

        rank = lambda i, j: 8
        g_ptg = build_cholesky_graph(nt, band, 64, rank)
        g_dtd = dtd_cholesky_graph(nt, band, 64, rank)

        def closure(g):
            dg = nx.DiGraph()
            dg.add_nodes_from(g.tasks)
            for tid, t in g.tasks.items():
                dg.add_edges_from((e.src, tid) for e in t.deps)
            return nx.transitive_closure_dag(dg)

        c_ptg, c_dtd = closure(g_ptg), closure(g_dtd)
        assert set(c_ptg.edges) == set(c_dtd.edges)

    def test_dtd_graph_simulates(self):
        rank = lambda i, j: 12
        g = dtd_cholesky_graph(8, 2, 128, rank)
        res = simulate(
            g,
            TwoDBlockCyclic(ProcessGrid.squarest(4)),
            MachineSpec(nodes=4, cores_per_node=2),
        )
        assert res.makespan > 0

    def test_dtd_graph_executes_numerically(self):
        """A DTD-built graph drives the real executor to a correct factor."""
        from repro import TruncationRule, st_3d_exp_problem
        from repro.matrix import BandTLRMatrix
        from repro.runtime import execute_graph

        prob = st_3d_exp_problem(512, 64, seed=2)
        m = BandTLRMatrix.from_problem(prob, TruncationRule(eps=1e-8), 2)
        grid = m.rank_grid()
        g = dtd_cholesky_graph(8, 2, 64, lambda i, j: int(max(grid[i, j], 1)))
        execute_graph(g, m)
        a = prob.dense()
        l = m.to_dense(lower_only=True)
        assert np.linalg.norm(l @ l.T - a) / np.linalg.norm(a) < 1e-6


@given(nt=st.integers(2, 8), band=st.integers(1, 4), k=st.integers(1, 30))
@settings(max_examples=20, deadline=None)
def test_property_dtd_ptg_equivalent(nt, band, k):
    g_ptg = build_cholesky_graph(nt, band, 32, lambda i, j: k)
    g_dtd = dtd_cholesky_graph(nt, band, 32, lambda i, j: k)
    assert set(g_ptg.tasks) == set(g_dtd.tasks)
    assert g_ptg.total_flops() == pytest.approx(g_dtd.total_flops())
    assert g_ptg.critical_path_flops() == pytest.approx(
        g_dtd.critical_path_flops()
    )


@given(
    n_tasks=st.integers(2, 25),
    n_tiles=st.integers(1, 5),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=30, deadline=None)
def test_property_discovery_matches_oracle(n_tasks, n_tiles, seed):
    """Random access streams: the discovered graph must order every pair
    of tasks that conflict (RAW, WAR, or WAW on some tile), and the
    serial insertion order must be one of its topological orders."""
    import numpy as np

    rng = np.random.default_rng(seed)
    ins = TaskInserter(8, 1, 16)
    streams = []
    for t in range(n_tasks):
        n_acc = int(rng.integers(1, min(4, n_tiles + 1)))
        tiles = rng.choice(n_tiles, size=n_acc, replace=False)
        accesses = []
        has_write = False
        for tile in tiles:
            mode = [Access.READ, Access.WRITE, Access.RW][int(rng.integers(3))]
            has_write = has_write or mode is not Access.READ
            accesses.append(((int(tile), 0), mode))
        if not has_write:
            accesses[0] = (accesses[0][0], Access.RW)
        streams.append(accesses)
        _mk(ins, (f"t{t}",), accesses)
    g = ins.seal()

    # Oracle: transitive reachability via networkx.
    import networkx as nx

    dg = nx.DiGraph()
    dg.add_nodes_from(g.tasks)
    for tid, task in g.tasks.items():
        dg.add_edges_from((e.src, tid) for e in task.deps)
    closure = nx.transitive_closure_dag(dg)

    def conflicts(a, b):
        wa = {t for t, m in streams[a] if m is not Access.READ}
        ra = {t for t, m in streams[a] if m in (Access.READ, Access.RW)}
        wb = {t for t, m in streams[b] if m is not Access.READ}
        rb = {t for t, m in streams[b] if m in (Access.READ, Access.RW)}
        return bool(wa & wb) or bool(wa & rb) or bool(ra & wb)

    for a in range(n_tasks):
        for b in range(a + 1, n_tasks):
            if conflicts(a, b):
                assert closure.has_edge((f"t{a}",), (f"t{b}",)), (a, b)
