"""Property tests for the mergeable log-bucket sketch.

The two claims the rest of the live-telemetry plane rests on:

* **exact merge semantics** — bucket counters are integers, so merging
  is associative and commutative byte-for-byte (thread shards, service
  shards, and distributed ranks may fold in any order);
* **bounded relative error** — every reported quantile is within the
  configured ``rel_err`` *relative* error of the exact nearest-rank
  order statistic.

Both are checked with hypothesis over arbitrary sample sets, plus
deterministic unit tests for the edge buckets (zero, overflow, empty).
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.sketch import DEFAULT_REL_ERR, LogHistogram

# Positive latencies spanning the interesting range (sub-min_value and
# above-max_value values are exercised by dedicated tests below).
values = st.floats(min_value=1e-8, max_value=1e8, allow_nan=False,
                   allow_infinity=False)
value_lists = st.lists(values, min_size=1, max_size=200)


def _sketch_of(samples, rel_err=DEFAULT_REL_ERR):
    sk = LogHistogram(rel_err)
    sk.extend(samples)
    return sk


def _exact_nearest_rank(samples, q):
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class TestMergeAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(value_lists, value_lists)
    def test_merge_commutative(self, a, b):
        ab = _sketch_of(a).merge(_sketch_of(b))
        ba = _sketch_of(b).merge(_sketch_of(a))
        np.testing.assert_array_equal(ab.counts, ba.counts)
        assert ab.count == ba.count
        assert ab.zero_count == ba.zero_count
        assert ab.min == ba.min and ab.max == ba.max

    @settings(max_examples=60, deadline=None)
    @given(value_lists, value_lists, value_lists)
    def test_merge_associative(self, a, b, c):
        left = _sketch_of(a).merge(_sketch_of(b)).merge(_sketch_of(c))
        right = _sketch_of(a).merge(_sketch_of(b).merge(_sketch_of(c)))
        np.testing.assert_array_equal(left.counts, right.counts)
        assert left.count == right.count
        assert left.sum == pytest.approx(right.sum)

    @settings(max_examples=40, deadline=None)
    @given(value_lists, value_lists)
    def test_merge_equals_union(self, a, b):
        """Merging two shards is exactly the sketch of the union."""
        merged = _sketch_of(a).merge(_sketch_of(b))
        union = _sketch_of(a + b)
        np.testing.assert_array_equal(merged.counts, union.counts)
        assert merged.count == union.count

    def test_merge_config_mismatch_raises(self):
        with pytest.raises(ValueError, match="configs"):
            LogHistogram(0.01).merge(LogHistogram(0.02))
        with pytest.raises(ValueError, match="configs"):
            LogHistogram(0.01).merge(LogHistogram(0.01, min_value=1e-6))


class TestQuantileBound:
    @settings(max_examples=80, deadline=None)
    @given(value_lists)
    def test_percentiles_within_documented_bound(self, samples):
        sk = _sketch_of(samples)
        for q in (0.5, 0.95, 0.99):
            exact = _exact_nearest_rank(samples, q)
            got = sk.quantile(q)
            assert abs(got - exact) <= sk.rel_err * exact * (1 + 1e-9), (
                f"q={q}: sketch {got} vs exact {exact}"
            )

    @settings(max_examples=40, deadline=None)
    @given(value_lists)
    def test_tracks_numpy_percentile(self, samples):
        """nearest-rank vs numpy's interpolated percentile differ by at
        most one order statistic; the sketch must stay within rel_err of
        the bracketing order statistics around numpy's answer."""
        sk = _sketch_of(samples)
        ordered = sorted(samples)
        for p in (50.0, 95.0, 99.0):
            ref = float(np.percentile(samples, p))
            got = sk.percentile(p)
            lo = min(v for v in ordered if v >= ref * (1 - 1e-12)) \
                if any(v >= ref * (1 - 1e-12) for v in ordered) else ordered[-1]
            hi_bound = max(ref, lo) * (1 + sk.rel_err) * (1 + 1e-9)
            lo_bound = min(ref, min(ordered)) * (1 - sk.rel_err) * (1 - 1e-9)
            assert lo_bound <= got <= hi_bound

    @settings(max_examples=30, deadline=None)
    @given(value_lists, st.floats(min_value=0.0, max_value=1.0))
    def test_monotone_in_q(self, samples, q):
        sk = _sketch_of(samples)
        assert sk.quantile(q) <= sk.quantile(min(1.0, q + 0.1)) * (1 + 1e-12)

    def test_exact_mean_and_extremes(self):
        sk = _sketch_of([0.001, 0.002, 0.003])
        assert sk.mean == pytest.approx(0.002)
        assert sk.min == 0.001 and sk.max == 0.003


class TestEdgeBuckets:
    def test_empty_sketch(self):
        sk = LogHistogram()
        assert sk.count == 0
        assert sk.quantile(0.5) == 0.0
        assert sk.mean == 0.0

    def test_sub_min_values_land_in_zero_bucket(self):
        sk = LogHistogram(min_value=1e-6)
        sk.add(0.0)
        sk.add(1e-9)
        assert sk.zero_count == 2
        assert sk.quantile(0.5) == 0.0

    def test_overflow_clamps_into_top_bucket(self):
        sk = LogHistogram(max_value=10.0)
        sk.add(1e6)
        assert sk.overflow == 1
        assert sk.count == 1
        # clamped, not lost: the quantile reports ~max_value
        assert sk.quantile(1.0) <= 10.0 * (1 + sk.rel_err)

    def test_nan_and_negative_ignored(self):
        sk = LogHistogram()
        sk.add(float("nan"))
        sk.add(-1.0)
        sk.add(1.0, count=0)
        assert sk.count == 0

    def test_weighted_add(self):
        sk = LogHistogram()
        sk.add(0.5, count=7)
        assert sk.count == 7 and sk.sum == pytest.approx(3.5)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            LogHistogram(0.0)
        with pytest.raises(ValueError):
            LogHistogram(1.0)
        with pytest.raises(ValueError):
            LogHistogram(min_value=2.0, max_value=1.0)
        with pytest.raises(ValueError):
            LogHistogram().quantile(1.5)


class TestSerialization:
    @settings(max_examples=40, deadline=None)
    @given(value_lists)
    def test_dict_roundtrip_is_exact(self, samples):
        sk = _sketch_of(samples)
        back = LogHistogram.from_dict(json.loads(json.dumps(sk.to_dict())))
        np.testing.assert_array_equal(back.counts, sk.counts)
        assert back.count == sk.count
        assert back.config == sk.config
        for q in (0.5, 0.95, 0.99):
            assert back.quantile(q) == sk.quantile(q)

    def test_sparse_encoding(self):
        sk = _sketch_of([0.001])
        d = sk.to_dict()
        assert len(d["buckets"]) == 1  # only the touched bucket

    def test_empty_roundtrip(self):
        back = LogHistogram.from_dict(LogHistogram().to_dict())
        assert back.count == 0 and back.quantile(0.5) == 0.0

    def test_copy_is_independent(self):
        sk = _sketch_of([1.0])
        cp = sk.copy()
        cp.add(2.0)
        assert sk.count == 1 and cp.count == 2

    def test_percentiles_keys(self):
        sk = _sketch_of([1.0, 2.0, 3.0])
        assert set(sk.percentiles()) == {"p50", "p95", "p99"}
        assert set(sk.percentiles((99.9,))) == {"p99.9"}
