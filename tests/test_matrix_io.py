"""Unit tests for matrix serialization."""

import numpy as np
import pytest

from repro import TruncationRule, st_3d_exp_problem
from repro.core import solve_spd, tlr_cholesky
from repro.matrix import BandTLRMatrix
from repro.matrix.io import load_matrix, save_matrix
from repro.utils import ConfigurationError


@pytest.fixture(scope="module")
def matrix():
    prob = st_3d_exp_problem(512, 64, seed=8)
    return BandTLRMatrix.from_problem(prob, TruncationRule(eps=1e-8), 2)


class TestRoundTrip:
    def test_identical_reconstruction(self, matrix, tmp_path):
        p = save_matrix(matrix, tmp_path / "m.npz")
        loaded = load_matrix(p)
        np.testing.assert_array_equal(loaded.to_dense(), matrix.to_dense())

    def test_metadata_preserved(self, matrix, tmp_path):
        loaded = load_matrix(save_matrix(matrix, tmp_path / "m.npz"))
        assert loaded.band_size == matrix.band_size
        assert loaded.desc == matrix.desc
        assert loaded.rule == matrix.rule

    def test_tile_formats_preserved(self, matrix, tmp_path):
        loaded = load_matrix(save_matrix(matrix, tmp_path / "m.npz"))
        for ij in matrix.tiles:
            assert type(loaded.tiles[ij]) is type(matrix.tiles[ij])
            assert loaded.tiles[ij].rank == matrix.tiles[ij].rank

    def test_suffix_appended(self, matrix, tmp_path):
        p = save_matrix(matrix, tmp_path / "noext")
        assert p.suffix == ".npz"

    def test_factorized_matrix_roundtrip(self, tmp_path):
        """A factor can be persisted and reused for solves."""
        prob = st_3d_exp_problem(512, 64, seed=8)
        m = BandTLRMatrix.from_problem(prob, TruncationRule(eps=1e-8), 2)
        tlr_cholesky(m)
        loaded = load_matrix(save_matrix(m, tmp_path / "f.npz"))

        a = prob.dense()
        rng = np.random.default_rng(0)
        x_true = rng.standard_normal(512)
        x = solve_spd(loaded, a @ x_true)
        assert np.linalg.norm(x - x_true) / np.linalg.norm(x_true) < 1e-6


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no such file"):
            load_matrix(tmp_path / "absent.npz")

    def test_not_an_archive(self, tmp_path):
        p = tmp_path / "junk.npz"
        np.savez(p, a=np.zeros(3))
        with pytest.raises(ConfigurationError, match="not a repro matrix"):
            load_matrix(p)

    def test_incomplete_archive(self, matrix, tmp_path):
        p = save_matrix(matrix, tmp_path / "m.npz")
        # Rewrite the archive without one tile.
        with np.load(p) as data:
            arrays = {k: data[k] for k in data.files if k != "D_0_0"}
        np.savez(p, **arrays)
        with pytest.raises(ConfigurationError, match="incomplete"):
            load_matrix(p)
