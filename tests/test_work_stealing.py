"""Unit tests for the simulator's work-stealing mode (paper future work)."""

import numpy as np
import pytest

from repro.distribution import OneDBlockCyclic, ProcessGrid, TwoDBlockCyclic
from repro.runtime import MachineSpec, build_cholesky_graph, simulate

RANK = lambda i, j: max(8, 100 // (i - j))


@pytest.fixture(scope="module")
def imbalanced():
    """A workload on a deliberately imbalanced (row 1DBCDD) distribution."""
    g = build_cholesky_graph(24, 3, 512, RANK)
    m = MachineSpec(nodes=6, cores_per_node=4)
    d = OneDBlockCyclic(6, axis="row")
    return g, m, d


class TestWorkStealing:
    def test_all_tasks_complete(self, imbalanced):
        g, m, d = imbalanced
        res = simulate(g, d, m, work_stealing=True)
        assert res.total_flops == pytest.approx(g.total_flops())

    def test_work_conserved(self, imbalanced):
        """Stealing moves work; it never duplicates or loses it."""
        g, m, d = imbalanced
        r0 = simulate(g, d, m)
        r1 = simulate(g, d, m, work_stealing=True)
        assert r1.busy.sum() == pytest.approx(r0.busy.sum())

    def test_helps_imbalanced_distribution(self, imbalanced):
        g, m, d = imbalanced
        r0 = simulate(g, d, m)
        r1 = simulate(g, d, m, work_stealing=True)
        assert r1.makespan <= r0.makespan * 1.001
        # Idle time strictly improves on this pathological layout.
        assert r1.occupancy.mean() >= r0.occupancy.mean() - 1e-12

    def test_redistributes_busy_time(self, imbalanced):
        """The busy-time spread across processes narrows."""
        g, m, d = imbalanced
        r0 = simulate(g, d, m)
        r1 = simulate(g, d, m, work_stealing=True)
        spread0 = float(r0.busy.max() - r0.busy.min())
        spread1 = float(r1.busy.max() - r1.busy.min())
        assert spread1 <= spread0 * 1.001

    def test_harmless_on_balanced_distribution(self):
        """On a well-balanced layout stealing must not blow up the time
        (round-trips could hurt; the idle-only trigger keeps it safe)."""
        g = build_cholesky_graph(16, 2, 512, RANK)
        m = MachineSpec(nodes=4, cores_per_node=4)
        d = TwoDBlockCyclic(ProcessGrid.squarest(4))
        r0 = simulate(g, d, m)
        r1 = simulate(g, d, m, work_stealing=True)
        assert r1.makespan <= r0.makespan * 1.15

    def test_deterministic(self, imbalanced):
        g, m, d = imbalanced
        a = simulate(g, d, m, work_stealing=True)
        b = simulate(g, d, m, work_stealing=True)
        assert a.makespan == b.makespan
        np.testing.assert_array_equal(a.busy, b.busy)
