"""Unit tests for the recursive (nested) dense-kernel formulations."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.linalg import (
    KernelClass,
    execute_subtasks,
    recursive_subtasks,
    recursive_task_costs,
    split_ranges,
)
from repro.linalg.flops import (
    flops_gemm_dense,
    flops_potrf_dense,
    flops_syrk_dense,
    flops_trsm_dense,
)
from repro.utils import ConfigurationError, NotPositiveDefiniteError


@pytest.fixture()
def rng():
    return np.random.default_rng(13)


def spd(rng, n):
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


class TestSplitRanges:
    def test_even(self):
        rs = split_ranges(12, 3)
        assert [(s.start, s.stop) for s in rs] == [(0, 4), (4, 8), (8, 12)]

    def test_uneven_covers_everything(self):
        rs = split_ranges(10, 3)
        assert rs[0].start == 0 and rs[-1].stop == 10
        total = sum(s.stop - s.start for s in rs)
        assert total == 10

    def test_split_larger_than_b_rejected(self):
        with pytest.raises(ConfigurationError):
            split_ranges(2, 3)


class TestRecursivePotrf:
    @pytest.mark.parametrize("split", [1, 2, 3, 4])
    def test_matches_lapack(self, rng, split):
        c = spd(rng, 24)
        ref = np.tril(sla.cholesky(c, lower=True))
        work = c.copy()
        execute_subtasks(recursive_subtasks(KernelClass.POTRF_DENSE, split, c=work))
        np.testing.assert_allclose(work, ref, atol=1e-10)

    def test_raises_on_indefinite(self, rng):
        work = -np.eye(8)
        with pytest.raises(NotPositiveDefiniteError):
            execute_subtasks(
                recursive_subtasks(KernelClass.POTRF_DENSE, 2, c=work)
            )

    def test_flops_sum_matches_whole_kernel(self):
        for split in (2, 4):
            costs = recursive_task_costs(KernelClass.POTRF_DENSE, 240, split)
            assert sum(t.flops for t in costs) == pytest.approx(
                flops_potrf_dense(240), rel=0.05
            )


class TestRecursiveTrsm:
    @pytest.mark.parametrize("split", [1, 2, 3])
    def test_matches_reference(self, rng, split):
        l = np.tril(sla.cholesky(spd(rng, 18), lower=True))
        c = rng.standard_normal((18, 18))
        ref = sla.solve_triangular(l, c.T, lower=True).T
        work = c.copy()
        execute_subtasks(
            recursive_subtasks(KernelClass.TRSM_DENSE, split, c=work, l_mat=l)
        )
        np.testing.assert_allclose(work, ref, atol=1e-9)

    def test_requires_l_mat(self, rng):
        with pytest.raises(ConfigurationError):
            recursive_subtasks(KernelClass.TRSM_DENSE, 2, c=np.eye(8))


class TestRecursiveSyrk:
    @pytest.mark.parametrize("split", [1, 2, 3])
    def test_matches_reference(self, rng, split):
        a = rng.standard_normal((18, 18))
        c0 = spd(rng, 18)
        work = c0.copy()
        execute_subtasks(
            recursive_subtasks(KernelClass.SYRK_DENSE, split, c=work, a=a)
        )
        np.testing.assert_allclose(work, c0 - a @ a.T, atol=1e-9)

    def test_result_symmetric(self, rng):
        a = rng.standard_normal((12, 12))
        work = spd(rng, 12)
        execute_subtasks(
            recursive_subtasks(KernelClass.SYRK_DENSE, 3, c=work, a=a)
        )
        np.testing.assert_allclose(work, work.T, atol=1e-12)


class TestRecursiveGemm:
    @pytest.mark.parametrize("split", [1, 2, 3])
    def test_matches_reference(self, rng, split):
        a, b = rng.standard_normal((15, 15)), rng.standard_normal((15, 15))
        c0 = rng.standard_normal((15, 15))
        work = c0.copy()
        execute_subtasks(
            recursive_subtasks(KernelClass.GEMM_DENSE, split, c=work, a=a, b=b)
        )
        np.testing.assert_allclose(work, c0 - a @ b.T, atol=1e-10)

    def test_requires_operands(self):
        with pytest.raises(ConfigurationError):
            recursive_subtasks(KernelClass.GEMM_DENSE, 2, c=np.eye(8))


class TestCostGraphs:
    def test_lr_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            recursive_task_costs(KernelClass.GEMM_LR, 64, 2)

    @pytest.mark.parametrize(
        "kind,total",
        [
            (KernelClass.TRSM_DENSE, flops_trsm_dense(120)),
            (KernelClass.SYRK_DENSE, flops_syrk_dense(120)),
            (KernelClass.GEMM_DENSE, flops_gemm_dense(120)),
        ],
    )
    def test_flop_conservation(self, kind, total):
        costs = recursive_task_costs(kind, 120, 3)
        assert sum(t.flops for t in costs) == pytest.approx(total, rel=0.05)

    def test_deps_are_topological(self):
        """Dependencies always point to earlier tasks (valid emission order)."""
        for kind in (
            KernelClass.POTRF_DENSE,
            KernelClass.TRSM_DENSE,
            KernelClass.SYRK_DENSE,
            KernelClass.GEMM_DENSE,
        ):
            costs = recursive_task_costs(kind, 64, 4)
            for idx, t in enumerate(costs):
                assert all(d < idx for d in t.deps)

    def test_expansion_counts(self):
        # split-2 POTRF: POTRF(0), TRSM(1,0), SYRK(1,0), POTRF(1).
        costs = recursive_task_costs(KernelClass.POTRF_DENSE, 64, 2)
        assert len(costs) == 4
        # split-2 GEMM: 2x2 output sub-tiles x 2 k-steps.
        costs3 = recursive_task_costs(KernelClass.GEMM_DENSE, 64, 2)
        assert len(costs3) == 8

    def test_more_splits_more_parallelism(self):
        """Critical path (in flops) shrinks with the split factor."""

        def cp(costs):
            dist = [0.0] * len(costs)
            for i, t in enumerate(costs):
                start = max((dist[d] for d in t.deps), default=0.0)
                dist[i] = start + t.flops
            return max(dist, default=0.0)

        c2 = recursive_task_costs(KernelClass.POTRF_DENSE, 240, 2)
        c4 = recursive_task_costs(KernelClass.POTRF_DENSE, 240, 4)
        assert cp(c4) < cp(c2) < flops_potrf_dense(240) * 1.01
