"""Smoke tests: every example parses and has a main() entry point."""

import ast
import importlib.util
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_parses(path):
    tree = ast.parse(path.read_text())
    func_names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
    assert "main" in func_names, f"{path.name} must define main()"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Every repro import used by the example actually exists."""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
            mod = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(mod, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} missing"
                )


def test_at_least_five_examples():
    assert len(EXAMPLES) >= 5
