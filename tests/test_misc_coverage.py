"""Coverage for corners not exercised elsewhere: upper-triangular band
distribution at scale, report formatting options, CommStats properties,
rank-grid rendering widths."""

import numpy as np
import pytest

from repro.analysis import format_table, render_rank_grid
from repro.distribution import BandDistribution, ProcessGrid, load_per_process
from repro.runtime.simulator import CommStats


class TestUpperBandDistribution:
    """Fig. 5(c): the column-based variant for upper-triangular sweeps."""

    def test_on_band_column_shares_owner(self):
        d = BandDistribution(ProcessGrid(2, 2), band_size=3, uplo="upper")
        j = 5
        owners = {d.owner(i, j) for i in range(j, j + 3)}
        assert len(owners) == 1

    def test_column_owners_cycle(self):
        d = BandDistribution(ProcessGrid(2, 2), band_size=2, uplo="upper")
        owners = [d.owner(j, j) for j in range(8)]
        assert owners == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_lower_and_upper_differ_on_band(self):
        lo = BandDistribution(ProcessGrid(2, 2), band_size=3, uplo="lower")
        up = BandDistribution(ProcessGrid(2, 2), band_size=3, uplo="upper")
        diffs = sum(
            lo.owner(i, j) != up.owner(i, j)
            for i in range(8)
            for j in range(i + 1)
            if lo.on_band(i, j)
        )
        assert diffs > 0

    def test_off_band_identical_between_variants(self):
        lo = BandDistribution(ProcessGrid(2, 2), band_size=2, uplo="lower")
        up = BandDistribution(ProcessGrid(2, 2), band_size=2, uplo="upper")
        for i in range(10):
            for j in range(i + 1):
                if not lo.on_band(i, j):
                    assert lo.owner(i, j) == up.owner(i, j)

    def test_weighted_load_balanced(self):
        d = BandDistribution(ProcessGrid.squarest(4), band_size=2)
        load = load_per_process(d, 16, weight=lambda i, j: 2.0)
        assert load.sum() == pytest.approx(2.0 * 16 * 17 / 2)


class TestCommStats:
    def test_remote_fraction(self):
        c = CommStats(local_edges=3, remote_edges=1)
        assert c.remote_fraction == 0.25

    def test_remote_fraction_empty(self):
        assert CommStats().remote_fraction == 0.0


class TestFormatting:
    def test_floatfmt_option(self):
        out = format_table(["x"], [[1.23456]], floatfmt=".1f")
        assert "1.2" in out and "1.23" not in out

    def test_bool_cells(self):
        out = format_table(["ok"], [[True]])
        assert "True" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_render_width_parameter(self):
        g = np.array([[-1, -1], [123, -1]])
        out = render_rank_grid(g, width=6)
        assert "   123" in out


class TestValidationEdges:
    def test_render_rank_grid_single_cell(self):
        assert "7" in render_rank_grid(np.array([[7]]))

    def test_format_table_mixed_types(self):
        out = format_table(
            ["name", "n", "t"], [["run", 3, 0.5], ["other", 10, 1.25]]
        )
        lines = out.splitlines()
        assert len(lines) == 4  # header, separator, two rows
