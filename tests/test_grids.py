"""Unit tests for location generators."""

import numpy as np
import pytest

from repro.geometry import (
    generate_locations,
    grid_side_for,
    perturbed_grid,
    uniform_cloud,
)
from repro.utils import ConfigurationError


class TestGridSideFor:
    @pytest.mark.parametrize(
        "n,ndim,expected",
        [(8, 3, 2), (9, 3, 3), (27, 3, 3), (28, 3, 4), (4, 2, 2), (5, 2, 3)],
    )
    def test_values(self, n, ndim, expected):
        assert grid_side_for(n, ndim) == expected

    def test_rejects_bad_ndim(self):
        with pytest.raises(ConfigurationError):
            grid_side_for(10, 4)


class TestPerturbedGrid:
    def test_shape_and_bounds(self):
        pts = perturbed_grid(100, 3, seed=0)
        assert pts.shape == (100, 3)
        assert pts.min() >= 0.0 and pts.max() <= 1.0

    def test_zero_jitter_is_regular(self):
        pts = perturbed_grid(8, 3, jitter=0.0)
        # 2x2x2 lattice with spacing 1/2, centred: coordinates in {0.25, 0.75}
        assert set(np.round(np.unique(pts), 6)) == {0.25, 0.75}

    def test_deterministic_given_seed(self):
        np.testing.assert_array_equal(
            perturbed_grid(50, 3, seed=9), perturbed_grid(50, 3, seed=9)
        )

    def test_distinct_points(self):
        pts = perturbed_grid(200, 3, seed=1)
        assert len(np.unique(pts, axis=0)) == 200

    def test_rejects_jitter_out_of_range(self):
        with pytest.raises(ConfigurationError):
            perturbed_grid(10, 3, jitter=1.0)

    def test_2d(self):
        assert perturbed_grid(10, 2, seed=0).shape == (10, 2)


class TestUniformCloud:
    def test_shape(self):
        assert uniform_cloud(64, 3, seed=0).shape == (64, 3)

    def test_bounds(self):
        pts = uniform_cloud(1000, 2, seed=0)
        assert pts.min() >= 0.0 and pts.max() <= 1.0

    def test_rejects_bad_ndim(self):
        with pytest.raises(ConfigurationError):
            uniform_cloud(10, 1)


class TestGenerateLocations:
    def test_morton_ordering_applied(self):
        raw = generate_locations(300, 3, seed=3, morton=False)
        ordered = generate_locations(300, 3, seed=3, morton=True)
        # Same multiset of points, different order.
        assert sorted(map(tuple, raw)) == sorted(map(tuple, ordered))
        d_raw = np.linalg.norm(np.diff(raw, axis=0), axis=1).mean()
        d_ord = np.linalg.norm(np.diff(ordered, axis=0), axis=1).mean()
        assert d_ord < d_raw

    def test_uniform_layout(self):
        pts = generate_locations(100, 3, layout="uniform", seed=0)
        assert pts.shape == (100, 3)

    def test_rejects_unknown_layout(self):
        with pytest.raises(ConfigurationError, match="layout"):
            generate_locations(10, 3, layout="hexagonal")
