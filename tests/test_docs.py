"""Docs hygiene: intra-repo links resolve, documented CLI flags exist.

The CI docs job runs ``tools/check_links.py`` directly; these tests keep
the same guarantees inside the tier-1 suite, plus one the script cannot
give: every ``python -m repro ...`` invocation shown in a fenced code
block uses a real subcommand with real flags (checked against
``repro.__main__.build_parser``, the single source of truth).
"""

import argparse
import importlib.util
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]


def _load_check_links():
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO / "tools" / "check_links.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_docs_exist():
    expected = {"index.md", "architecture.md", "api.md",
                "observability.md", "reproducing.md"}
    assert expected <= {p.name for p in (REPO / "docs").glob("*.md")}


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_intra_repo_links_resolve(path):
    problems = _load_check_links().check_file(path)
    assert problems == []


# ----------------------------------------------------------------------
# CLI flags mentioned in docs must exist
# ----------------------------------------------------------------------
def _cli_spec() -> dict[str, set[str]]:
    """``{subcommand: {--flag, ...}}`` from the real parser."""
    from repro.__main__ import build_parser

    parser = build_parser()
    sub = next(
        a for a in parser._actions
        if isinstance(a, argparse._SubParsersAction)
    )
    return {
        name: {opt for act in p._actions for opt in act.option_strings}
        for name, p in sub.choices.items()
    }


def _fenced_blocks(text: str) -> list[str]:
    return re.findall(r"```[a-z]*\n(.*?)```", text, re.DOTALL)


def _repro_invocations(text: str):
    """Every ``python -m repro <sub> ...`` line in fenced blocks."""
    for block in _fenced_blocks(text):
        joined = re.sub(r"\\\s*\n\s*", " ", block)  # backslash continuations
        for line in joined.splitlines():
            m = re.match(r"(?:\$\s+)?python -m repro\s+(\S+)(.*)", line.strip())
            if m:
                yield m.group(1), m.group(2)


def test_docs_reference_real_cli():
    spec = _cli_spec()
    seen = 0
    for path in DOC_FILES:
        for sub, rest in _repro_invocations(path.read_text()):
            seen += 1
            assert sub in spec, f"{path.name}: unknown subcommand {sub!r}"
            for flag in re.findall(r"--[a-z][\w-]*", rest):
                assert flag in spec[sub], (
                    f"{path.name}: `python -m repro {sub}` has no {flag}"
                )
    assert seen >= 8  # the docs actually show CLI usage


def test_every_cli_flag_is_documented():
    """The reverse direction: each user-facing flag appears in some doc."""
    spec = _cli_spec()
    corpus = "\n".join(p.read_text() for p in DOC_FILES)
    for sub, flags in spec.items():
        for flag in flags - {"-h", "--help"}:
            assert flag in corpus, f"`repro {sub} {flag}` is undocumented"


def test_service_flags_agree_with_docs():
    """Both directions for the serve/bench-service pair: every flag the
    parser accepts appears in the docs corpus, and the docs demonstrate
    the commands with real flags (checked by test_docs_reference_real_cli
    for validity; here for presence)."""
    spec = _cli_spec()
    assert "serve" in spec and "bench-service" in spec
    # the service-specific knobs exist on the parser...
    assert {"--service-workers", "--max-queue", "--max-batch",
            "--cache-mb", "--warm-dir", "--deadline-ms",
            "--clients", "--requests"} <= spec["serve"]
    assert {"--clients", "--requests", "--max-batch",
            "--smoke", "--label", "--out"} <= spec["bench-service"]

    # ...every user-facing flag of both commands appears in the docs
    corpus = "\n".join(p.read_text() for p in DOC_FILES)
    for sub in ("serve", "bench-service"):
        for flag in spec[sub] - {"-h", "--help"}:
            assert flag in corpus, f"`repro {sub} {flag}` is undocumented"

    # ...and the docs actually invoke both commands in fenced blocks
    invoked = set()
    for path in DOC_FILES:
        for cmd, _rest in _repro_invocations(path.read_text()):
            invoked.add(cmd)
    assert {"serve", "bench-service"} <= invoked


def test_tune_flags_agree_with_docs():
    """Both directions for the autotuner: every ``tune`` flag the parser
    accepts appears in the docs corpus, and the docs demonstrate the
    calibrate → sweep → verify workflow with real invocations."""
    spec = _cli_spec()
    # the sweep-specific knobs exist on the parser...
    assert {"--from-run", "--grid", "--target-nt", "--verify",
            "--tolerance", "--smoke", "--workers", "--emit", "--report",
            "--verify-obs", "--out"} <= spec["tune"]
    # ...and the config hand-off exists on both consumers
    assert "--config" in spec["execute"]
    assert "--config" in spec["demo"]

    # every user-facing tune flag appears in the docs
    corpus = "\n".join(p.read_text() for p in DOC_FILES)
    for flag in spec["tune"] - {"-h", "--help"}:
        assert flag in corpus, f"`repro tune {flag}` is undocumented"

    # the docs actually demonstrate the loop: tune --from-run with
    # --verify and --emit, and execute --config consuming the result
    tune_flags, execute_flags = set(), set()
    for path in DOC_FILES:
        for cmd, rest in _repro_invocations(path.read_text()):
            flags = set(re.findall(r"--[a-z][\w-]*", rest))
            if cmd == "tune":
                tune_flags |= flags
            elif cmd == "execute":
                execute_flags |= flags
    assert {"--from-run", "--verify", "--emit"} <= tune_flags
    assert "--config" in execute_flags


def test_live_telemetry_flags_agree_with_docs():
    """Both directions for the live monitoring plane: the serve
    ``--listen``/``--slo``/``--linger`` flags, the ``top`` dashboard,
    and the ``obs-merge`` shard merger exist on the parser and appear
    in the docs corpus, with real demonstrated invocations."""
    spec = _cli_spec()
    assert {"--listen", "--slo", "--linger"} <= spec["serve"]
    assert {"--interval", "--iterations", "--once"} <= spec["top"]
    assert {"--out", "-o"} & spec["obs-merge"]
    assert "--shards" in spec["execute"]

    corpus = "\n".join(p.read_text() for p in DOC_FILES)
    for sub in ("top", "obs-merge"):
        for flag in spec[sub] - {"-h", "--help"}:
            assert flag in corpus, f"`repro {sub} {flag}` is undocumented"
    for flag in ("--listen", "--slo", "--linger", "--shards"):
        assert flag in corpus, f"{flag} is undocumented"

    invoked = set()
    serve_flags = set()
    for path in DOC_FILES:
        for cmd, rest in _repro_invocations(path.read_text()):
            invoked.add(cmd)
            if cmd == "serve":
                serve_flags |= set(re.findall(r"--[a-z][\w-]*", rest))
    assert {"top", "obs-merge"} <= invoked
    assert {"--listen", "--slo"} <= serve_flags


def test_executor_flags_agree_with_docs():
    """The distributed-executor flags exist, with the documented choices,
    and the docs show them in actual invocations (not just prose)."""
    spec = _cli_spec()
    assert {"--executor", "--ranks", "--calibrate-from"} <= spec["execute"]

    from repro.__main__ import build_parser

    parser = build_parser()
    sub = next(
        a for a in parser._actions
        if isinstance(a, argparse._SubParsersAction)
    )
    execute = sub.choices["execute"]
    choices = next(
        act.choices for act in execute._actions
        if "--executor" in act.option_strings
    )
    assert set(choices) == {"threads", "processes", "sim"}

    used = set()
    for path in DOC_FILES:
        for cmd, rest in _repro_invocations(path.read_text()):
            if cmd == "execute":
                for m in re.finditer(r"--executor\s+(\S+)", rest):
                    used.add(m.group(1))
    # The docs demonstrate both the real distributed backend and the
    # predicted one, with backend names the parser accepts.
    assert {"processes", "sim"} <= used
    assert used <= set(choices)
