"""High-rate chaos soak (slow tier): the executors under sustained fire.

These tests hammer the recovery engine with fault rates far above the
acceptance scenario (>= 20% of dispatches failing) and audit the three
properties that matter at that intensity:

* **no deadlock** — every run terminates (a hung quiesce or a dead worker
  would trip the suite timeout);
* **no leaked pool buffers** — after recovery, every live
  :class:`~repro.runtime.memory_pool.MemoryPool` buffer is a factor array
  the factorized matrix still references;
* **unchanged numerics** — the recovered factor is bitwise identical to
  the fault-free one, and its backward error matches the accuracy budget.
"""

import threading
import time

import numpy as np
import pytest

from repro.linalg.tiles import LowRankTile
from repro.matrix import BandTLRMatrix
from repro.runtime import (
    RecoveryPolicy,
    build_cholesky_graph,
    execute_graph,
    execute_graph_parallel,
    parallel_map,
)
from repro.testing import FaultPlan
from repro.utils import TransientFaultError

pytestmark = pytest.mark.slow

#: One in three dispatches fails somehow; stalls are short so the soak
#: stays fast even without a watchdog.
HEAVY = "transient:*:0.2,nan:gemm:0.1,oom:trsm:0.1,stall:syrk:0.1:0.01"

#: Deep retry budget: at these rates a task can fail several times in a
#: row, and the default budget of 3 would abort the run.
DEEP = RecoveryPolicy(max_retries=12, backoff_s=0.0)


def _graph_for(matrix):
    grid = matrix.rank_grid()
    return build_cholesky_graph(
        matrix.ntiles,
        matrix.band_size,
        matrix.desc.tile_size,
        lambda i, j: int(max(grid[i, j], 1)),
    )


@pytest.fixture(scope="module")
def base_matrix(small_problem, rule8):
    return BandTLRMatrix.from_problem(small_problem, rule8, band_size=1)


@pytest.fixture(scope="module")
def dense_a(base_matrix):
    return base_matrix.to_dense()


@pytest.fixture(scope="module")
def baseline_factor(base_matrix):
    m = base_matrix.copy()
    execute_graph(_graph_for(m), m)
    return m.to_dense(lower_only=True)


def _audit_pool(report, matrix):
    """Every live pool buffer must be a factor the matrix references."""
    referenced = 0
    for tile in matrix.tiles.values():
        if isinstance(tile, LowRankTile):
            referenced += report.pool.owns(tile.u) + report.pool.owns(tile.v)
    assert report.pool.live_count == referenced, (
        f"{report.pool.live_count - referenced} pool buffers leaked by "
        f"failed task attempts"
    )


class TestHeavySoak:
    def test_serial_heavy_fire(self, base_matrix, baseline_factor, dense_a):
        m = base_matrix.copy()
        rep = execute_graph(
            _graph_for(m), m,
            faults=FaultPlan.parse(HEAVY, seed=1),
            recovery=DEEP,
        )
        assert rep.resilience.retries > 20
        assert np.array_equal(m.to_dense(lower_only=True), baseline_factor)
        _audit_pool(rep, m)
        ell = m.to_dense(lower_only=True)
        resid = np.linalg.norm(ell @ ell.T - dense_a) / np.linalg.norm(dense_a)
        assert resid < 1e-6

    @pytest.mark.parallel
    @pytest.mark.parametrize("seed", range(5))
    def test_parallel_soak_across_seeds(
        self, base_matrix, baseline_factor, seed
    ):
        """Five distinct adversaries, four workers each: all terminate,
        all reproduce the clean factor, none leak pool buffers."""
        m = base_matrix.copy()
        rep = execute_graph_parallel(
            _graph_for(m), m, n_workers=4,
            faults=FaultPlan.parse(HEAVY, seed=seed),
            recovery=DEEP,
        )
        assert rep.resilience.retries > 0
        assert np.array_equal(m.to_dense(lower_only=True), baseline_factor)
        _audit_pool(rep, m)

    @pytest.mark.parallel
    def test_stall_storm_with_watchdog(self, base_matrix, baseline_factor):
        """Long stalls (5 s each) under a 100 ms watchdog: the run must
        finish in a fraction of the aggregate stall time."""
        m = base_matrix.copy()
        t0 = time.perf_counter()
        rep = execute_graph_parallel(
            _graph_for(m), m, n_workers=4,
            faults=FaultPlan.parse("stall:*:0.1:5.0", seed=7),
            recovery=RecoveryPolicy(
                max_retries=12, backoff_s=0.0, watchdog_timeout_s=0.1
            ),
        )
        elapsed = time.perf_counter() - t0
        stalls = rep.resilience.watchdog_requeues
        assert stalls > 0
        assert elapsed < stalls * 5.0 / 2
        assert np.array_equal(m.to_dense(lower_only=True), baseline_factor)

    @pytest.mark.parallel
    def test_chaos_plus_checkpoint_plus_kill_and_resume(
        self, base_matrix, baseline_factor, tmp_path
    ):
        """The full gauntlet: heavy faults AND checkpointing AND a
        mid-run kill, resumed under the same adversary."""
        from repro.runtime.task import TaskKind

        class ChaosThenKill:
            def __init__(self):
                self.inner = FaultPlan.parse(HEAVY, seed=3).injector()
                self.killed = False

            def pre_dispatch(self, tid, attempt, cancel_event=None):
                if tid == (TaskKind.POTRF, 6) and not self.killed:
                    self.killed = True
                    raise KeyboardInterrupt
                self.inner.pre_dispatch(tid, attempt, cancel_event)

            def corrupt_output(self, tid, attempt, tile):
                return self.inner.corrupt_output(tid, attempt, tile)

        killed = base_matrix.copy()
        with pytest.raises(KeyboardInterrupt):
            execute_graph_parallel(
                _graph_for(killed), killed, n_workers=3,
                faults=ChaosThenKill(), recovery=DEEP,
                checkpoint=tmp_path,
            )

        resumed = base_matrix.copy()
        rep = execute_graph_parallel(
            _graph_for(resumed), resumed, n_workers=3,
            faults=FaultPlan.parse(HEAVY, seed=3),
            recovery=DEEP,
            checkpoint=tmp_path, resume=True,
        )
        assert rep.tasks_resumed > 0
        assert np.array_equal(
            resumed.to_dense(lower_only=True), baseline_factor
        )
        _audit_pool(rep, resumed)


class TestWorkpoolRetries:
    def _flaky(self, fail_times):
        attempts = {}
        lock = threading.Lock()

        def fn(x):
            with lock:
                seen = attempts[x] = attempts.get(x, 0) + 1
            if seen <= fail_times:
                raise TransientFaultError(f"flaky item {x}")
            return x * x

        return fn, attempts

    @pytest.mark.parametrize("workers", [1, 4])
    def test_retries_absorb_transients(self, workers):
        fn, attempts = self._flaky(fail_times=2)
        out = parallel_map(fn, range(20), workers, retries=3)
        assert out == [x * x for x in range(20)]
        assert all(n == 3 for n in attempts.values())

    def test_budget_exhaustion_raises(self):
        fn, _ = self._flaky(fail_times=5)
        with pytest.raises(TransientFaultError):
            parallel_map(fn, range(4), 2, retries=2)

    def test_zero_retries_is_old_behavior(self):
        fn, _ = self._flaky(fail_times=1)
        with pytest.raises(TransientFaultError):
            parallel_map(fn, range(4), 1)

    def test_non_transient_errors_propagate_immediately(self):
        calls = []

        def fn(x):
            calls.append(x)
            raise ValueError("not a fault")

        with pytest.raises(ValueError):
            parallel_map(fn, range(4), 1, retries=5)
        assert len(calls) == 1
