"""Unit tests for memory accounting (Fig. 8 bookkeeping)."""

import pytest

from repro.linalg import DenseTile, LowRankTile
from repro.matrix import (
    BYTES_PER_ELEMENT,
    BandTLRMatrix,
    MemoryTracker,
    footprint_report,
)
from repro.utils import ConfigurationError

import numpy as np


class TestFootprintReport:
    def test_reduction_factor_positive(self, small_tlr):
        rep = footprint_report(small_tlr)
        assert rep.maxrank == 32  # b/2 default
        assert rep.reduction_factor > 0

    def test_static_exceeds_dynamic_when_ranks_low(self, medium_problem, rule8):
        # Loose accuracy gives low ranks, so the static maxrank descriptor
        # wastes memory relative to exact allocation.
        from repro import TruncationRule

        m = BandTLRMatrix.from_problem(
            medium_problem, TruncationRule(eps=1e-2), band_size=1
        )
        rep = footprint_report(m)
        assert rep.static_elements > rep.dynamic_elements
        assert rep.reduction_factor > 1.5

    def test_dense_elements_is_lower_triangle(self, small_tlr):
        rep = footprint_report(small_tlr)
        assert rep.dense_elements == 36 * 64 * 64

    def test_bytes_properties(self, small_tlr):
        rep = footprint_report(small_tlr)
        assert rep.static_bytes == rep.static_elements * BYTES_PER_ELEMENT
        assert rep.dynamic_bytes == rep.dynamic_elements * BYTES_PER_ELEMENT

    def test_rejects_bad_maxrank(self, small_tlr):
        with pytest.raises(ConfigurationError):
            footprint_report(small_tlr, maxrank=0)


class TestMemoryTracker:
    def test_register_matrix(self, small_tlr):
        t = MemoryTracker()
        t.register_matrix(small_tlr)
        assert t.current_elements == small_tlr.memory_elements()
        assert t.peak_elements == t.current_elements

    def test_reallocation_counted(self):
        t = MemoryTracker()
        t.allocate_tile((1, 0), LowRankTile(np.zeros((8, 2)), np.zeros((8, 2))))
        assert t.reallocations == 0
        t.allocate_tile((1, 0), LowRankTile(np.zeros((8, 5)), np.zeros((8, 5))))
        assert t.reallocations == 1
        assert t.current_elements == 16 * 5

    def test_same_size_replacement_not_a_realloc(self):
        t = MemoryTracker()
        t.allocate_tile((0, 0), DenseTile(np.zeros((4, 4))))
        t.allocate_tile((0, 0), DenseTile(np.ones((4, 4))))
        assert t.reallocations == 0

    def test_peak_tracks_transients(self):
        t = MemoryTracker()
        t.allocate_tile((0, 0), DenseTile(np.zeros((4, 4))))
        t.transient(100)
        assert t.peak_elements == 16 + 100
        assert t.current_elements == 16

    def test_transient_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            MemoryTracker().transient(-1)

    def test_bytes(self):
        t = MemoryTracker()
        t.allocate_tile((0, 0), DenseTile(np.zeros((2, 2))))
        assert t.current_bytes == 4 * BYTES_PER_ELEMENT
