"""Unit tests: the parallel executor computes the sequential factor
bitwise-identically for any worker count, conserves tasks, and feeds the
trace/occupancy analysis pipeline."""

import json
import threading

import numpy as np
import pytest

from repro.analysis import occupancy_summary
from repro.obs import gantt, write_chrome_trace
from repro.core import TLRSolver, tlr_cholesky
from repro.linalg.flops import KernelClass
from repro.matrix import BandTLRMatrix
from repro.runtime import (
    ThreadSafeFlopCounter,
    ThreadSafeMemoryPool,
    build_cholesky_graph,
    execute_graph,
    execute_graph_parallel,
)
from repro.utils import ConfigurationError, RuntimeSystemError, SchedulingError


def _rank_fn_for(matrix):
    grid = matrix.rank_grid()

    def rank(i, j):
        return int(max(grid[i, j], 1))

    return rank


def _graph_for(matrix, band):
    return build_cholesky_graph(
        matrix.ntiles, band, matrix.desc.tile_size, _rank_fn_for(matrix)
    )


class TestDeterminism:
    @pytest.mark.parametrize("band", [1, 2, 4])
    def test_bitwise_identical_across_worker_counts(
        self, small_problem, rule8, band
    ):
        base = BandTLRMatrix.from_problem(small_problem, rule8, band_size=band)
        g = _graph_for(base, band)
        factors = {}
        for w in (1, 2, 4):
            m = base.copy()
            execute_graph_parallel(g, m, n_workers=w)
            factors[w] = m.to_dense(lower_only=True)
        assert np.array_equal(factors[1], factors[2])
        assert np.array_equal(factors[1], factors[4])

    def test_matches_sequential_executor(self, small_problem, rule8):
        base = BandTLRMatrix.from_problem(small_problem, rule8, band_size=2)
        g = _graph_for(base, 2)
        seq, par = base.copy(), base.copy()
        execute_graph(g, seq)
        execute_graph_parallel(g, par, n_workers=4)
        assert np.array_equal(
            seq.to_dense(lower_only=True), par.to_dense(lower_only=True)
        )

    def test_matches_reference_loops(self, small_problem, small_dense, rule8):
        m = BandTLRMatrix.from_problem(small_problem, rule8, band_size=2)
        g = _graph_for(m, 2)
        execute_graph_parallel(g, m, n_workers=3)
        l = m.to_dense(lower_only=True)
        err = np.linalg.norm(l @ l.T - small_dense) / np.linalg.norm(small_dense)
        assert err < 1e-6

    @pytest.mark.parametrize("scheduler", ["priority", "fifo", "lifo"])
    def test_scheduler_policies_same_factor(self, small_problem, rule8, scheduler):
        base = BandTLRMatrix.from_problem(small_problem, rule8, band_size=2)
        g = _graph_for(base, 2)
        ref, m = base.copy(), base.copy()
        execute_graph_parallel(g, ref, n_workers=1)
        execute_graph_parallel(g, m, n_workers=4, scheduler=scheduler)
        assert np.array_equal(
            ref.to_dense(lower_only=True), m.to_dense(lower_only=True)
        )


class TestConservation:
    def test_every_task_executed_exactly_once(self, small_tlr):
        g = _graph_for(small_tlr, 1)
        rep = execute_graph_parallel(g, small_tlr, n_workers=4, collect_trace=True)
        assert rep.tasks_executed == g.n_tasks
        executed = [rec[0] for rec in rep.trace]
        assert len(executed) == g.n_tasks
        assert set(executed) == set(g.tasks)

    def test_trace_respects_dependency_order(self, small_tlr):
        g = _graph_for(small_tlr, 1)
        rep = execute_graph_parallel(
            g, small_tlr, n_workers=4, collect_trace=True
        )
        start = {rec[0]: rec[2] for rec in rep.trace}
        end = {rec[0]: rec[3] for rec in rep.trace}
        for tid, task in g.tasks.items():
            for e in task.deps:
                assert end[e.src] <= start[tid] + 1e-9

    def test_flops_match_sequential(self, small_tlr):
        g = _graph_for(small_tlr, 1)
        seq = small_tlr.copy()
        rep_s = execute_graph(g, seq)
        rep_p = execute_graph_parallel(g, small_tlr, n_workers=4)
        assert rep_p.counter.total == pytest.approx(rep_s.counter.total)
        assert rep_p.rank_growth_events == rep_s.rank_growth_events
        assert rep_p.max_rank_seen == rep_s.max_rank_seen

    def test_busy_and_makespan_populated(self, small_tlr):
        g = _graph_for(small_tlr, 1)
        rep = execute_graph_parallel(g, small_tlr, n_workers=2)
        assert rep.makespan > 0
        assert rep.busy.shape == (2,)
        assert rep.busy.sum() > 0
        assert np.all(rep.occupancy <= 1.0 + 1e-9)


class TestGuards:
    def test_band_mismatch_rejected(self, small_tlr):
        g = build_cholesky_graph(small_tlr.ntiles, 3, 64, lambda i, j: 8)
        with pytest.raises(RuntimeSystemError):
            execute_graph_parallel(g, small_tlr)

    def test_nt_mismatch_rejected(self, small_tlr):
        g = build_cholesky_graph(4, 1, 64, lambda i, j: 8)
        with pytest.raises(RuntimeSystemError):
            execute_graph_parallel(g, small_tlr)

    def test_expanded_graph_rejected(self, small_tlr):
        g = build_cholesky_graph(
            small_tlr.ntiles, 1, 64, lambda i, j: 8, recursive_split=2
        )
        with pytest.raises(RuntimeSystemError, match="expanded"):
            execute_graph_parallel(g, small_tlr)

    def test_bad_scheduler_rejected(self, small_tlr):
        g = _graph_for(small_tlr, 1)
        with pytest.raises(SchedulingError):
            execute_graph_parallel(g, small_tlr, scheduler="random")

    def test_bad_worker_count_rejected(self, small_tlr):
        g = _graph_for(small_tlr, 1)
        with pytest.raises(ConfigurationError):
            execute_graph_parallel(g, small_tlr, n_workers=0)

    def test_kernel_failure_propagates(self, small_problem, rule8):
        m = BandTLRMatrix.from_problem(small_problem, rule8, band_size=1)
        # Destroy positive definiteness so POTRF fails inside a worker.
        diag = m.tile(0, 0)
        diag.data[:] = -np.eye(diag.shape[0])
        g = _graph_for(m, 1)
        with pytest.raises(RuntimeSystemError, match="worker failed"):
            execute_graph_parallel(g, m, n_workers=2)


class TestAnalysisPipeline:
    def test_gantt_renders_real_trace(self, small_tlr):
        g = _graph_for(small_tlr, 1)
        rep = execute_graph_parallel(
            g, small_tlr, n_workers=2, collect_trace=True
        )
        text = gantt(rep, width=40)
        assert "P=potrf" in text
        assert "p0" in text

    def test_chrome_trace_export(self, small_tlr, tmp_path):
        g = _graph_for(small_tlr, 1)
        rep = execute_graph_parallel(
            g, small_tlr, n_workers=2, collect_trace=True
        )
        path = write_chrome_trace(rep, tmp_path / "real")
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == g.n_tasks
        assert doc["otherData"]["nodes"] == 2
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids <= {0, 1}

    def test_occupancy_summary(self, small_tlr):
        g = _graph_for(small_tlr, 1)
        rep = execute_graph_parallel(g, small_tlr, n_workers=2)
        s = occupancy_summary(rep)
        assert 0.0 < s.mean_occupancy <= 1.0
        assert s.busy_per_process.shape == (2,)


class TestFactorizeIntegration:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_tlr_cholesky_n_workers(self, small_problem, rule8, workers):
        ref = BandTLRMatrix.from_problem(small_problem, rule8, band_size=2)
        par = ref.copy()
        rep_s = tlr_cholesky(ref)
        rep_p = tlr_cholesky(par, n_workers=workers)
        assert np.allclose(
            ref.to_dense(lower_only=True),
            par.to_dense(lower_only=True),
            atol=1e-9,
        )
        assert rep_p.counter.total > 0
        assert rep_p.max_rank_seen == rep_s.max_rank_seen

    def test_adaptive_threshold_conflict(self, small_tlr):
        with pytest.raises(ConfigurationError, match="adaptive_threshold"):
            tlr_cholesky(small_tlr, adaptive_threshold=0.5, n_workers=2)

    def test_solver_facade(self, small_problem, small_dense):
        solver = TLRSolver.from_problem(small_problem, accuracy=1e-8)
        solver.factorize(n_workers=2)
        rng = np.random.default_rng(0)
        x_true = rng.standard_normal(small_problem.n)
        x = solver.solve(small_dense @ x_true)
        assert np.linalg.norm(x - x_true) / np.linalg.norm(x_true) < 1e-6


class TestThreadSafeWrappers:
    def test_counter_concurrent_adds(self):
        counter = ThreadSafeFlopCounter()
        n, per_thread = 8, 2000

        def work():
            for _ in range(per_thread):
                counter.add(KernelClass.GEMM_DENSE, 1.0)

        threads = [threading.Thread(target=work) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.total == n * per_thread
        assert counter.per_class_count[KernelClass.GEMM_DENSE] == n * per_thread

    def test_pool_concurrent_churn(self):
        pool = ThreadSafeMemoryPool()
        errors = []

        def work(seed):
            rng = np.random.default_rng(seed)
            try:
                for _ in range(300):
                    buf = pool.allocate((int(rng.integers(1, 8)), 16))
                    pool.release(buf)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(s,)) for s in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert pool.stats.outstanding_bytes == 0
        assert pool.stats.releases == 6 * 300


@pytest.mark.slow
@pytest.mark.parallel
class TestStress:
    def test_morton_stress_bitwise(self, medium_problem, medium_dense, rule8):
        """NT=12 Morton-ordered st-3D-exp at band 2: 4-way execution is
        bitwise equal to 1-way and numerically valid."""
        base = BandTLRMatrix.from_problem(medium_problem, rule8, band_size=2)
        g = _graph_for(base, 2)
        m1, m4 = base.copy(), base.copy()
        execute_graph_parallel(g, m1, n_workers=1)
        rep = execute_graph_parallel(g, m4, n_workers=4, collect_trace=True)
        assert rep.tasks_executed == g.n_tasks
        l1 = m1.to_dense(lower_only=True)
        l4 = m4.to_dense(lower_only=True)
        assert np.array_equal(l1, l4)
        err = np.linalg.norm(l4 @ l4.T - medium_dense) / np.linalg.norm(
            medium_dense
        )
        assert err < 1e-6
