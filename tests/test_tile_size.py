"""Unit tests for tile-size selection."""

import pytest

from repro.core import candidate_tile_sizes, local_minimum_search, suggest_tile_size
from repro.utils import ConfigurationError


class TestSuggestTileSize:
    def test_paper_examples(self):
        """The paper's estimates: ~1039 for N=1.08M, ~1469 for N=2.16M."""
        assert suggest_tile_size(1_080_000) == pytest.approx(1039, abs=2)
        assert suggest_tile_size(2_160_000) == pytest.approx(1470, abs=2)

    def test_coefficient(self):
        assert suggest_tile_size(10_000, coefficient=2.0) == 200

    def test_multiple_of(self):
        b = suggest_tile_size(1_080_000, multiple_of=64)
        assert b % 64 == 0

    def test_minimum_clamp(self):
        assert suggest_tile_size(100, minimum=64) == 64

    def test_never_exceeds_n(self):
        assert suggest_tile_size(40, minimum=64) == 40


class TestCandidates:
    def test_centred_on_suggestion(self):
        cands = candidate_tile_sizes(1_000_000, count=5)
        assert suggest_tile_size(1_000_000) in cands
        assert cands == sorted(cands)

    def test_rejects_bad_step(self):
        with pytest.raises(ConfigurationError):
            candidate_tile_sizes(1000, step=1.0)

    def test_clamped_to_n(self):
        assert max(candidate_tile_sizes(100, count=7)) <= 100


class TestLocalMinimumSearch:
    def test_finds_minimum_of_convex(self):
        best, evals = local_minimum_search(
            [100, 200, 300, 400, 500], lambda b: (b - 300) ** 2
        )
        assert best == 300

    def test_stops_after_trend_change(self):
        calls = []

        def f(b):
            calls.append(b)
            return (b - 200) ** 2

        best, _ = local_minimum_search([100, 200, 300, 400, 500, 600], f)
        assert best == 200
        # Stops after two consecutive worse evaluations (400, 500).
        assert calls == [100, 200, 300, 400]

    def test_monotone_decreasing_runs_to_end(self):
        best, evals = local_minimum_search([1, 2, 3], lambda b: -b)
        assert best == 3
        assert len(evals) == 3

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            local_minimum_search([], lambda b: b)
