"""Unit tests for the Table-I flop model and kernel taxonomy."""

import pytest

from repro.linalg import FlopCounter, KernelClass, dense_cholesky_flops, kernel_flops
from repro.linalg.flops import (
    flops_gemm_dense,
    flops_gemm_dense_lrd,
    flops_gemm_dense_lrlr,
    flops_gemm_lr,
    flops_gemm_lr_update_dense,
    flops_potrf_dense,
    flops_syrk_dense,
    flops_syrk_lr,
    flops_trsm_dense,
    flops_trsm_lr,
)


class TestTableIFormulas:
    """The exact published formulas."""

    B, K = 2400, 100

    def test_potrf(self):
        assert flops_potrf_dense(self.B) == self.B**3 / 3

    def test_trsm_dense(self):
        assert flops_trsm_dense(self.B) == self.B**3

    def test_trsm_lr(self):
        assert flops_trsm_lr(self.B, self.K) == self.B**2 * self.K

    def test_syrk_dense(self):
        assert flops_syrk_dense(self.B) == self.B**3

    def test_syrk_lr(self):
        assert flops_syrk_lr(self.B, self.K) == 2 * self.B**2 * self.K + 4 * self.B * self.K**2

    def test_gemm_dense(self):
        assert flops_gemm_dense(self.B) == 2 * self.B**3

    def test_gemm_dense_lrd(self):
        assert flops_gemm_dense_lrd(self.B, self.K) == 4 * self.B**2 * self.K

    def test_gemm_dense_lrlr_equal_ranks(self):
        assert (
            flops_gemm_dense_lrlr(self.B, self.K, self.K)
            == 2 * self.B**2 * self.K + 4 * self.B * self.K**2
        )

    def test_gemm_lr_dense(self):
        assert (
            flops_gemm_lr_update_dense(self.B, self.K)
            == 34 * self.B * self.K**2 + 157 * self.K**3
        )

    def test_gemm_lr(self):
        assert flops_gemm_lr(self.B, self.K) == 36 * self.B * self.K**2 + 157 * self.K**3


class TestTLRCheaperThanDense:
    """Sanity: TLR kernels beat dense ones when k << b (the whole point)."""

    def test_gemm_crossover_exists(self):
        b = 2400
        assert flops_gemm_lr(b, 50) < flops_gemm_dense(b)
        # Near k = b/2 the TLR GEMM is MORE expensive (Fig. 2a's message).
        assert flops_gemm_lr(b, b // 2) > flops_gemm_dense(b)

    def test_trsm_always_cheaper_below_b(self):
        b = 1000
        assert flops_trsm_lr(b, b - 1) < flops_trsm_dense(b)


class TestKernelFlopsDispatch:
    @pytest.mark.parametrize("kind", list(KernelClass))
    def test_all_classes_dispatch(self, kind):
        assert kernel_flops(kind, 256, 16, 8) > 0

    def test_gemm_dense_lrlr_uses_both_ranks(self):
        a = kernel_flops(KernelClass.GEMM_DENSE_LRLR, 256, 16, 8)
        b = kernel_flops(KernelClass.GEMM_DENSE_LRLR, 256, 16, 16)
        assert a != b


class TestKernelClassProperties:
    def test_band_kernels(self):
        band = {k for k in KernelClass if k.is_band_kernel}
        assert band == {
            KernelClass.POTRF_DENSE,
            KernelClass.TRSM_DENSE,
            KernelClass.SYRK_DENSE,
            KernelClass.GEMM_DENSE,
        }

    def test_dense_output(self):
        assert KernelClass.GEMM_DENSE_LRLR.is_dense_output
        assert not KernelClass.GEMM_LR.is_dense_output
        assert not KernelClass.TRSM_LR.is_dense_output


class TestFlopCounter:
    def test_accumulate(self):
        c = FlopCounter()
        c.add(KernelClass.GEMM_DENSE, 100.0)
        c.add(KernelClass.GEMM_DENSE, 50.0)
        c.add(KernelClass.POTRF_DENSE, 10.0)
        assert c.total == 160.0
        assert c.per_class_count[KernelClass.GEMM_DENSE] == 2

    def test_total_for_subset(self):
        c = FlopCounter()
        c.add(KernelClass.GEMM_LR, 5.0)
        c.add(KernelClass.GEMM_DENSE, 7.0)
        assert c.total_for(KernelClass.GEMM_LR) == 5.0
        assert c.total_for(KernelClass.GEMM_LR, KernelClass.GEMM_DENSE) == 12.0

    def test_merge(self):
        a, b = FlopCounter(), FlopCounter()
        a.add(KernelClass.TRSM_LR, 1.0)
        b.add(KernelClass.TRSM_LR, 2.0)
        b.add(KernelClass.SYRK_LR, 3.0)
        a.merge(b)
        assert a.per_class[KernelClass.TRSM_LR] == 3.0
        assert a.per_class[KernelClass.SYRK_LR] == 3.0

    def test_report_mentions_total(self):
        c = FlopCounter()
        c.add(KernelClass.GEMM_LR, 5.0)
        assert "total" in c.report()


def test_dense_cholesky_flops():
    assert dense_cholesky_flops(300) == pytest.approx(300**3 / 3)
