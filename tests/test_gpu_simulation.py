"""Unit tests for GPU-accelerated simulation (paper future work)."""

import pytest

from repro.distribution import BandDistribution, ProcessGrid, TwoDBlockCyclic
from repro.runtime import MachineSpec, build_cholesky_graph, simulate
from repro.utils import ConfigurationError

RANK = lambda i, j: max(8, 96 // (i - j))


@pytest.fixture(scope="module")
def band_graph():
    return build_cholesky_graph(20, 4, 1024, RANK)


class TestGpuSimulation:
    def test_all_tasks_complete(self, band_graph):
        m = MachineSpec(nodes=2, cores_per_node=4, gpus_per_node=1)
        d = BandDistribution(ProcessGrid.squarest(2), band_size=4)
        res = simulate(band_graph, d, m)
        assert res.total_flops == pytest.approx(band_graph.total_flops())

    def test_gpu_busy_reported(self, band_graph):
        m = MachineSpec(nodes=2, cores_per_node=4, gpus_per_node=1)
        d = BandDistribution(ProcessGrid.squarest(2), band_size=4)
        res = simulate(band_graph, d, m)
        assert res.gpu_busy is not None
        assert res.gpu_busy.sum() > 0

    def test_no_gpu_means_none(self, band_graph):
        m = MachineSpec(nodes=2, cores_per_node=4)
        d = BandDistribution(ProcessGrid.squarest(2), band_size=4)
        assert simulate(band_graph, d, m).gpu_busy is None

    def test_gpus_speed_up_band_dominated_run(self, band_graph):
        d = BandDistribution(ProcessGrid.squarest(2), band_size=4)
        t0 = simulate(band_graph, d, MachineSpec(nodes=2, cores_per_node=4)).makespan
        t1 = simulate(
            band_graph, d, MachineSpec(nodes=2, cores_per_node=4, gpus_per_node=1)
        ).makespan
        assert t1 < t0

    def test_lr_work_stays_on_cpu(self):
        """A pure-TLR graph (band 1, no dense GEMM/TRSM/SYRK off diagonal)
        gives the GPU only the POTRFs."""
        g = build_cholesky_graph(10, 1, 512, RANK)
        m = MachineSpec(nodes=1, cores_per_node=4, gpus_per_node=2)
        d = TwoDBlockCyclic(ProcessGrid(1, 1))
        res = simulate(g, d, m)
        potrf_gpu_time = 10 * (512**3 / 3) / (m.gpu_dense_gflops * 1e9 * m.rates.potrf_fraction)
        assert res.gpu_busy.sum() == pytest.approx(potrf_gpu_time, rel=1e-6)

    def test_cpu_only_tasks_do_not_deadlock_on_free_gpu(self):
        """An idle GPU with only low-rank work ready must not stall."""
        g = build_cholesky_graph(8, 1, 256, lambda i, j: 32)
        m = MachineSpec(nodes=1, cores_per_node=1, gpus_per_node=4)
        d = TwoDBlockCyclic(ProcessGrid(1, 1))
        res = simulate(g, d, m)
        assert res.makespan > 0

    def test_deterministic(self, band_graph):
        d = BandDistribution(ProcessGrid.squarest(2), band_size=4)
        m = MachineSpec(nodes=2, cores_per_node=4, gpus_per_node=1)
        a = simulate(band_graph, d, m)
        b = simulate(band_graph, d, m)
        assert a.makespan == b.makespan

    def test_rejects_negative_gpus(self):
        with pytest.raises(ConfigurationError):
            MachineSpec(gpus_per_node=-1)

    def test_breakdown_includes_gpu_time(self, band_graph):
        m = MachineSpec(nodes=2, cores_per_node=4, gpus_per_node=1)
        d = BandDistribution(ProcessGrid.squarest(2), band_size=4)
        res = simulate(band_graph, d, m)
        total = sum(res.busy_by_kernel.values())
        assert total == pytest.approx(
            float(res.busy.sum() + res.gpu_busy.sum()), rel=1e-9
        )
