"""Unit tests for the triangular-solve task graphs."""


from repro.distribution import BandDistribution, ProcessGrid
from repro.runtime import MachineSpec, build_cholesky_graph, simulate
from repro.runtime.solve_graph import SolveKind, build_solve_graph
from repro.runtime.task import TaskKind

RANK = lambda i, j: 12


class TestStructure:
    def test_task_count(self):
        nt = 6
        g = build_solve_graph(nt, 2, 64, RANK)
        # nt diagonal solves + nt(nt-1)/2 updates.
        assert g.n_tasks == nt + nt * (nt - 1) // 2

    def test_valid_dag(self):
        build_solve_graph(8, 3, 64, RANK).validate()
        build_solve_graph(8, 3, 64, RANK, kind=SolveKind.BACKWARD).validate()

    def test_forward_order(self):
        g = build_solve_graph(4, 1, 64, RANK)
        order = g.topological_order()
        solve_pos = {tid[2]: i for i, tid in enumerate(order)
                     if tid[0] is TaskKind.TRSM}
        assert solve_pos[0] < solve_pos[1] < solve_pos[2] < solve_pos[3]

    def test_backward_order(self):
        g = build_solve_graph(4, 1, 64, RANK, kind=SolveKind.BACKWARD)
        order = g.topological_order()
        solve_pos = {tid[2]: i for i, tid in enumerate(order)
                     if tid[0] is TaskKind.TRSM}
        assert solve_pos[3] < solve_pos[2] < solve_pos[1] < solve_pos[0]

    def test_update_depends_on_source_solve(self):
        g = build_solve_graph(4, 1, 64, RANK)
        upd = g.tasks[(TaskKind.GEMM, "solve", 2, 0)]
        assert any(e.src == (TaskKind.TRSM, "solve", 0) for e in upd.deps)

    def test_rmw_chain_within_block(self):
        g = build_solve_graph(5, 1, 64, RANK)
        upd = g.tasks[(TaskKind.GEMM, "solve", 4, 1)]
        assert any(e.src == (TaskKind.GEMM, "solve", 4, 0) for e in upd.deps)


class TestSimulation:
    def test_simulates_on_band_distribution(self):
        g = build_solve_graph(12, 2, 512, RANK)
        res = simulate(
            g,
            BandDistribution(ProcessGrid.squarest(4), band_size=2),
            MachineSpec(nodes=4, cores_per_node=4),
        )
        assert res.makespan > 0

    def test_latency_bound_critical_path(self):
        """Solves barely speed up with more cores — the RMW chain through
        each vector block serializes the sweep (unlike the factorization)."""
        g = build_solve_graph(16, 1, 512, RANK)
        d = BandDistribution(ProcessGrid.squarest(1), band_size=1)
        t1 = simulate(g, d, MachineSpec(nodes=1, cores_per_node=1)).makespan
        t8 = simulate(g, d, MachineSpec(nodes=1, cores_per_node=8)).makespan
        assert t8 > 0.4 * t1  # poor scaling is the *expected* physics

    def test_solve_much_cheaper_than_factorization(self):
        nt, b = 16, 512
        gs = build_solve_graph(nt, 2, b, RANK)
        gf = build_cholesky_graph(nt, 2, b, RANK)
        assert gs.total_flops() < 0.02 * gf.total_flops()
