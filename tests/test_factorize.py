"""Unit tests for the reference BAND-DENSE-TLR Cholesky factorization."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro import TruncationRule, st_3d_exp_problem
from repro.linalg import KernelClass
from repro.matrix import BandTLRMatrix
from repro.core import tlr_cholesky
from repro.utils import NotPositiveDefiniteError


class TestCorrectness:
    @pytest.mark.parametrize("band", [1, 2, 3, 8])
    def test_backward_error_tracks_eps(self, small_problem, small_dense, rule8, band):
        m = BandTLRMatrix.from_problem(small_problem, rule8, band_size=band)
        tlr_cholesky(m)
        l = m.to_dense(lower_only=True)
        err = np.linalg.norm(l @ l.T - small_dense) / np.linalg.norm(small_dense)
        assert err < 1e-6

    def test_dense_band_matches_lapack(self, small_problem, small_dense, rule8):
        m = BandTLRMatrix.from_problem(small_problem, rule8, band_size=8)
        tlr_cholesky(m)
        ref = np.tril(sla.cholesky(small_dense, lower=True))
        np.testing.assert_allclose(m.to_dense(lower_only=True), ref, atol=1e-10)

    def test_diagonal_tiles_lower_triangular(self, small_tlr):
        tlr_cholesky(small_tlr)
        for k in range(small_tlr.ntiles):
            d = small_tlr.tile(k, k).data
            assert np.all(np.triu(d, 1) == 0.0)
            assert np.all(np.diag(d) > 0.0)

    @pytest.mark.slow
    def test_looser_eps_larger_error(self, medium_problem, medium_dense):
        errs = []
        for eps in (1e-10, 1e-6, 1e-2):
            m = BandTLRMatrix.from_problem(
                medium_problem, TruncationRule(eps=eps), band_size=1
            )
            tlr_cholesky(m)
            l = m.to_dense(lower_only=True)
            errs.append(
                np.linalg.norm(l @ l.T - medium_dense) / np.linalg.norm(medium_dense)
            )
        assert errs[0] < errs[1] < errs[2]

    def test_ragged_last_tile(self):
        prob = st_3d_exp_problem(450, 64, seed=1)  # 450 = 7*64 + 2
        m = BandTLRMatrix.from_problem(prob, TruncationRule(eps=1e-8), band_size=2)
        tlr_cholesky(m)
        a = prob.dense()
        l = m.to_dense(lower_only=True)
        assert np.linalg.norm(l @ l.T - a) / np.linalg.norm(a) < 1e-6


class TestFailureModes:
    def test_indefinite_matrix_raises(self, rule8):
        a = -np.eye(128)
        m = BandTLRMatrix.from_dense(a, 32, rule8, band_size=4)
        with pytest.raises(NotPositiveDefiniteError):
            tlr_cholesky(m)

    def test_too_loose_eps_can_break_spd(self, medium_problem):
        """An over-aggressive threshold destroys positive definiteness on a
        tightly-coupled matrix; the factorization must fail loudly, not
        return garbage."""
        m = BandTLRMatrix.from_problem(
            medium_problem, TruncationRule(eps=0.8), band_size=1
        )
        try:
            tlr_cholesky(m)
        except NotPositiveDefiniteError as e:
            assert e.tile_index is not None
        # If it survived (matrix well-conditioned enough), the error is large
        # but the code path is still exercised.


class TestReport:
    def test_counter_covers_expected_kernels(self, small_problem, rule8):
        m = BandTLRMatrix.from_problem(small_problem, rule8, band_size=3)
        rep = tlr_cholesky(m)
        seen = set(rep.counter.per_class)
        assert KernelClass.POTRF_DENSE in seen
        assert KernelClass.TRSM_DENSE in seen
        assert KernelClass.TRSM_LR in seen
        assert KernelClass.GEMM_LR in seen

    def test_pure_tlr_kernel_set(self, small_tlr):
        rep = tlr_cholesky(small_tlr)
        assert set(rep.counter.per_class) == {
            KernelClass.POTRF_DENSE,
            KernelClass.TRSM_LR,
            KernelClass.SYRK_LR,
            KernelClass.GEMM_LR,
        }

    def test_dense_flop_total(self, small_problem, rule8):
        m = BandTLRMatrix.from_problem(small_problem, rule8, band_size=8)
        rep = tlr_cholesky(m)
        n = small_problem.n
        assert rep.counter.total == pytest.approx(n**3 / 3, rel=0.1)

    def test_max_rank_seen_positive(self, small_tlr):
        rep = tlr_cholesky(small_tlr)
        assert rep.max_rank_seen > 0
