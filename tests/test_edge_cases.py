"""Edge-case tests across modules: ragged tiles, degenerate shapes,
extreme parameters."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro import TruncationRule, st_3d_exp_problem
from repro.linalg import (
    DenseTile,
    compress_block,
    gemm_dense_lrd,
    gemm_lr,
    trsm_lr,
)
from repro.matrix import BandTLRMatrix, TileDescriptor
from repro.core import solve_spd, tlr_cholesky
from repro.statistics import MaternParams, st_2d_exp_problem
from repro.runtime import MachineSpec, build_cholesky_graph, simulate
from repro.distribution import ProcessGrid, TwoDBlockCyclic

RULE = TruncationRule(eps=1e-10, relative=True)


class TestRaggedTiles:
    """The last tile row/column is smaller when b does not divide n."""

    def test_rectangular_lr_gemm(self):
        rng = np.random.default_rng(0)
        # C is 20x32, A is 20x32, B is 32x32 (as when m is the last tile).
        a = compress_block(
            rng.standard_normal((20, 3)) @ rng.standard_normal((3, 32)), RULE
        )
        b = compress_block(
            rng.standard_normal((32, 2)) @ rng.standard_normal((2, 32)), RULE
        )
        c0 = rng.standard_normal((20, 5)) @ rng.standard_normal((5, 32))
        c = compress_block(c0, RULE)
        out, res = gemm_lr(a, b, c, RULE)
        ref = c0 - a.to_dense() @ b.to_dense().T
        np.testing.assert_allclose(out.to_dense(), ref, atol=1e-7)

    def test_rectangular_mixed_gemm(self):
        rng = np.random.default_rng(1)
        a = compress_block(
            rng.standard_normal((20, 2)) @ rng.standard_normal((2, 16)), RULE
        )
        bop = DenseTile(rng.standard_normal((24, 16)))
        c = DenseTile(rng.standard_normal((20, 24)))
        c0 = c.data.copy()
        gemm_dense_lrd(a, bop, c)
        np.testing.assert_allclose(
            c.data, c0 - a.to_dense() @ bop.data.T, atol=1e-8
        )

    def test_rectangular_trsm_lr(self):
        rng = np.random.default_rng(2)
        spd = rng.standard_normal((16, 16))
        l = np.tril(sla.cholesky(spd @ spd.T + 16 * np.eye(16), lower=True))
        c = compress_block(
            rng.standard_normal((20, 3)) @ rng.standard_normal((3, 16)), RULE
        )
        out = trsm_lr(DenseTile(l), c)
        ref = c.to_dense() @ np.linalg.inv(l).T
        np.testing.assert_allclose(out.to_dense(), ref, atol=1e-8)

    @pytest.mark.parametrize("n", [451, 500, 509])
    def test_factorize_and_solve_ragged(self, n):
        prob = st_3d_exp_problem(n, 64, seed=3, nugget=1e-3)
        m = BandTLRMatrix.from_problem(prob, TruncationRule(eps=1e-8), 2)
        tlr_cholesky(m)
        a = prob.dense()
        rng = np.random.default_rng(0)
        x_true = rng.standard_normal(n)
        x = solve_spd(m, a @ x_true)
        assert np.linalg.norm(x - x_true) / np.linalg.norm(x_true) < 1e-5


class TestDegenerateShapes:
    def test_single_tile_matrix(self):
        prob = st_3d_exp_problem(64, 64, seed=0)
        m = BandTLRMatrix.from_problem(prob, TruncationRule(eps=1e-8), 1)
        tlr_cholesky(m)
        a = prob.dense()
        l = m.to_dense(lower_only=True)
        np.testing.assert_allclose(l @ l.T, a, atol=1e-10)

    def test_two_tile_matrix(self):
        prob = st_3d_exp_problem(128, 64, seed=0)
        m = BandTLRMatrix.from_problem(prob, TruncationRule(eps=1e-8), 1)
        tlr_cholesky(m)
        a = prob.dense()
        l = m.to_dense(lower_only=True)
        err = np.linalg.norm(l @ l.T - a) / np.linalg.norm(a)
        assert err < 1e-7

    def test_descriptor_single_tile(self):
        d = TileDescriptor(10, 10)
        assert d.ntiles == 1
        assert list(d.lower_tiles()) == [(0, 0)]
        assert d.count_off_band(1) == 0

    def test_simulate_single_task_graph(self):
        g = build_cholesky_graph(1, 1, 64, lambda i, j: 1)
        res = simulate(
            g,
            TwoDBlockCyclic(ProcessGrid(1, 1)),
            MachineSpec(nodes=1, cores_per_node=1),
        )
        assert res.makespan > 0
        assert res.comm.messages == 0


class Test2DProblems:
    def test_factory_shape(self):
        prob = st_2d_exp_problem(256, 64, seed=0)
        assert prob.ndim == 2
        assert prob.n == 256

    def test_2d_factorization_correct(self):
        prob = st_2d_exp_problem(512, 64, seed=1)
        m = BandTLRMatrix.from_problem(prob, TruncationRule(eps=1e-8), 1)
        tlr_cholesky(m)
        a = prob.dense()
        l = m.to_dense(lower_only=True)
        err = np.linalg.norm(l @ l.T - a) / np.linalg.norm(a)
        assert err < 1e-6

    def test_2d_ranks_lower_than_3d(self):
        rule = TruncationRule(eps=1e-6)
        m2 = BandTLRMatrix.from_problem(st_2d_exp_problem(1000, 125, seed=2), rule, 1)
        m3 = BandTLRMatrix.from_problem(st_3d_exp_problem(1000, 125, seed=2), rule, 1)
        assert m2.rank_stats()[1] < m3.rank_stats()[1]


class TestExtremeParameters:
    def test_smooth_kernel_factorizes(self):
        """High smoothness (nu = 2.5 closed form) stays SPD and accurate
        with an adequate nugget (smoother kernels are closer to singular)."""
        smooth_prob = st_3d_exp_problem(
            512, 64, seed=4, params=MaternParams(1.0, 0.1, 2.5), nugget=1e-3
        )
        m = BandTLRMatrix.from_problem(smooth_prob, TruncationRule(eps=1e-8), 1)
        tlr_cholesky(m)
        a = smooth_prob.dense()
        l = m.to_dense(lower_only=True)
        assert np.linalg.norm(l @ l.T - a) / np.linalg.norm(a) < 1e-6

    def test_bessel_branch_kernel_factorizes(self):
        """Non-half-integer smoothness goes through scipy.special.kv."""
        prob = st_3d_exp_problem(
            343, 49, seed=5, params=MaternParams(1.0, 0.2, 1.0), nugget=1e-4
        )
        m = BandTLRMatrix.from_problem(prob, TruncationRule(eps=1e-8), 1)
        tlr_cholesky(m)
        a = prob.dense()
        l = m.to_dense(lower_only=True)
        assert np.linalg.norm(l @ l.T - a) / np.linalg.norm(a) < 1e-6

    def test_tiny_correlation_length_nearly_diagonal(self):
        """theta2 -> 0 makes the covariance nearly diagonal: rank ~ 0
        off-diagonal tiles and a trivially easy factorization."""
        prob = st_3d_exp_problem(
            512, 64, seed=6, params=MaternParams(1.0, 1e-4, 0.5)
        )
        m = BandTLRMatrix.from_problem(prob, TruncationRule(eps=1e-8), 1)
        _, avg, _ = m.rank_stats()
        assert avg < 2.0

    def test_zero_rank_tiles_through_factorization(self):
        """Far tiles may compress to rank 0; every kernel must cope."""
        prob = st_3d_exp_problem(
            512, 64, seed=7, params=MaternParams(1.0, 0.005, 0.5)
        )
        m = BandTLRMatrix.from_problem(prob, TruncationRule(eps=1e-6), 1)
        grid = m.rank_grid()
        assert (grid == 0).any()
        tlr_cholesky(m)
        a = prob.dense()
        l = m.to_dense(lower_only=True)
        assert np.linalg.norm(l @ l.T - a) / np.linalg.norm(a) < 1e-5
