"""Tests for the simulator-guided autotuner (``repro.tune``).

Covers the full calibrate → sweep → verify loop: exact rank recovery
from recorded runs, kernel-rate fitting (median replay and per-class
GFLOP/s extrapolation), sweep determinism and winner dominance, the
shared smallest-band tie-break, config JSON round-trips through
``execute --config``, and the CLI's exit-code contract (2 on bad
paths/config, 1 on a failed verify gate).

The module-scope ``recorded`` fixture executes one real band-1 run of a
256-point problem and writes standard ``--obs`` artifacts; everything
downstream calibrates from that directory exactly like a user would.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TruncationRule, obs, st_3d_exp_problem
from repro.__main__ import main
from repro.analysis.ranks import paper_rank_model
from repro.core import sweep_band_by_flops, tie_break_band, tune_band_size
from repro.matrix import BandTLRMatrix
from repro.obs.analytics import load_run, occupancy
from repro.runtime import build_cholesky_graph, get_executor
from repro.runtime.calibration import MeasuredRates, rates_from_runs
from repro.runtime.simulator import simulate_schedule
from repro.tune import (
    Calibration,
    CandidateReport,
    TuneCandidate,
    TuneGrid,
    TuneResult,
    parse_grid,
    predicted_run,
    ranks_from_run,
    sweep,
)
from repro.tune.sweep import SCHEDULERS
from repro.utils import ConfigurationError

N, TILE, BAND, EPS = 256, 64, 1, 1e-6


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One real recorded band-1 run: (obs dir, pristine rank grid)."""
    problem = st_3d_exp_problem(N, TILE, seed=0)
    matrix = BandTLRMatrix.from_problem(
        problem, TruncationRule(eps=EPS), band_size=BAND
    )
    grid = matrix.rank_grid()
    graph = build_cholesky_graph(
        matrix.ntiles, BAND, TILE, lambda i, j: int(max(grid[i, j], 1))
    )
    ex = get_executor("threads", n_workers=2)
    meta = {
        "n": N, "tile": TILE, "band": BAND, "accuracy": EPS, "seed": 0,
        "workers": 2, "compression": "auto", "precision": "fp64",
        "batch": True,
    }
    with obs.observe(meta=meta) as ob:
        ex.execute(graph, matrix, batch=True)
    outdir = tmp_path_factory.mktemp("tune") / "run"
    ob.write(outdir)
    return outdir, grid


@pytest.fixture(scope="module")
def run(recorded):
    return load_run(recorded[0])


@pytest.fixture(scope="module")
def calibration(recorded, run):
    return Calibration.from_runs([run], sources=(str(recorded[0]),))


def synthetic_calibration(nt, tile, ranks_by_d, *, gflops=1.0):
    """A Calibration with constant rank per sub-diagonal and flat rates
    (every task's simulated duration proportional to its flops)."""
    grid = np.full((nt, nt), -1, dtype=np.int64)
    for d in range(1, nt):
        for j in range(nt - d):
            grid[j + d, j] = ranks_by_d[d]
    cal = Calibration(
        tile_size=tile,
        ntiles=nt,
        band_size=1,
        rank_grid=grid,
        rank_model=paper_rank_model(tile, accuracy=1e-8),
        rates=MeasuredRates(durations={}, fallback_gflops=gflops),
        n_workers=2,
        meta={"n": nt * tile, "tile": tile, "accuracy": 1e-8, "seed": 0},
    )
    return cal, grid


# ---------------------------------------------------------------------------
# Calibration: rank recovery and rate fitting
# ---------------------------------------------------------------------------
class TestRanksFromRun:
    def test_recovers_rank_grid_exactly(self, run, recorded):
        """(4)-TRSM flops invert to the pristine per-tile ranks."""
        _, grid = recorded
        recovered = ranks_from_run(run)
        populated = recovered >= 0
        assert populated.any()
        assert np.array_equal(recovered[populated], grid[populated])

    def test_diagonal_and_upper_unpopulated(self, run):
        recovered = ranks_from_run(run)
        nt = recovered.shape[0]
        for i in range(nt):
            for j in range(i, nt):
                assert recovered[i, j] == -1

    def test_requires_graph_document(self, run):
        from repro.obs.analytics import RunTrace

        with pytest.raises(ConfigurationError):
            ranks_from_run(RunTrace(tasks=list(run.tasks), graph=None))


class TestRates:
    def test_median_replay_matches_recorded_medians(self, run):
        rates = rates_from_runs([run])
        by_class: dict[str, list[float]] = {}
        for t in run.tasks:
            if t.kernel:
                by_class.setdefault(t.kernel, []).append(t.duration)
        assert by_class
        for kernel, durs in by_class.items():
            got = rates.seconds(kernel, 1e9, TILE, 8)
            assert got == pytest.approx(float(np.median(durs)))

    def test_unknown_class_falls_back_to_flops(self, run):
        rates = rates_from_runs([run])
        got = rates.seconds("(9)-NOSUCH", 2e9, TILE, 8)
        assert got == pytest.approx(2e9 / (rates.fallback_gflops * 1e9))

    def test_extrapolate_uses_class_gflops(self, run):
        rates = dataclasses.replace(rates_from_runs([run]), extrapolate=True)
        kernel = next(t.kernel for t in run.tasks if t.kernel)
        g = rates.class_gflops[kernel]
        assert g > 0.0
        assert rates.seconds(kernel, 3e9, TILE, 8) == pytest.approx(
            3e9 / (g * 1e9)
        )

    def test_pooling_identical_runs_keeps_medians(self, run):
        single = rates_from_runs([run])
        pooled = rates_from_runs([run, run])
        assert pooled.durations == single.durations


class TestCalibration:
    def test_geometry_fields(self, calibration):
        assert calibration.ntiles == N // TILE
        assert calibration.tile_size == TILE
        assert calibration.band_size == BAND
        assert calibration.meta["accuracy"] == EPS

    def test_geometry_mismatch_raises(self, run):
        import copy

        other = copy.deepcopy(run)
        other.graph["tile_size"] = TILE * 2
        with pytest.raises(ConfigurationError):
            Calibration.from_runs([run, other])

    def test_rank_fn_exact_at_recorded_size(self, calibration, recorded):
        _, grid = recorded
        fn = calibration.rank_fn(calibration.ntiles)
        for i in range(calibration.ntiles):
            for j in range(i):
                assert fn(i, j) == max(grid[i, j], 1)

    def test_rank_grid_extrapolates_to_other_sizes(self, calibration):
        nt = calibration.ntiles + 3
        grid = calibration.rank_grid_for(nt)
        assert grid.shape == (nt, nt)
        assert (grid[np.tril_indices(nt, -1)] >= 1).all()


# ---------------------------------------------------------------------------
# The shared tie-break and flop-model agreement
# ---------------------------------------------------------------------------
class TestTieBreak:
    #: The pinned regression grid: tile 64, ranks decaying 40→2 with
    #: sub-diagonal distance — the paper's qualitative rank structure.
    KNOWN_RANKS = {1: 40, 2: 12, 3: 6, 4: 4, 5: 2}

    def test_smallest_band_wins(self):
        assert tie_break_band([3, 5, 2]) == 2

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            tie_break_band([])

    def test_known_grid_pins_band_two(self):
        """Regression: this grid must keep choosing band 2 — by
        Algorithm 1, by the full flop sweep, and over any band set."""
        _, grid = synthetic_calibration(6, 64, self.KNOWN_RANKS)
        assert tune_band_size(grid, 64).band_size == 2
        assert tune_band_size(grid, 64).band_size_range == (2, 2)
        assert sweep_band_by_flops(grid, 64) == 2
        assert sweep_band_by_flops(grid, 64, bands=list(range(1, 7))) == 2

    def test_equal_cost_bands_resolve_to_smallest(self):
        """Bands beyond the last sub-diagonal cost the same total; the
        shared rule resolves the tie downward."""
        _, grid = synthetic_calibration(6, 64, self.KNOWN_RANKS)
        assert sweep_band_by_flops(grid, 64, bands=[5, 6]) == 5

    def test_simulated_sort_key_applies_same_rule(self):
        """Equal-makespan candidates rank ascending by band — the sort
        key *is* tie_break_band applied through the ranking."""
        cands = [TuneCandidate(band_size=b) for b in (4, 2, 3)]
        ordered = sorted(cands, key=TuneCandidate.sort_key)
        assert ordered[0].band_size == tie_break_band([4, 2, 3])


class TestFlopSimulatedAgreement:
    """tune_band_size and the simulated sweep agree at small N.

    On one rank and one core with flat rates, simulated makespan is the
    graph's total work — the same objective Algorithm 1's flop model
    approximates.  In the regimes where the approximation is exact
    enough to matter (clearly-low ranks, paper-like decaying ranks) the
    two deciders must pick the same band.
    """

    def _winner(self, cal, bands):
        res = sweep(
            cal,
            grid=TuneGrid(bands=bands, schedulers=("priority",), cores=(1,)),
        )
        return res, res.winner.candidate.band_size

    def test_low_rank_regime_agrees_on_band_one(self):
        cal, grid = synthetic_calibration(5, 64, {d: 2 for d in range(1, 5)})
        bands = tuple(range(1, 6))
        _, winner = self._winner(cal, bands)
        assert winner == 1
        assert sweep_band_by_flops(grid, 64, bands=list(bands)) == 1
        assert tune_band_size(grid, 64).band_size == 1

    def test_paper_regime_agrees_on_band_two(self):
        cal, grid = synthetic_calibration(6, 64, TestTieBreak.KNOWN_RANKS)
        bands = tuple(range(1, 7))
        res, winner = self._winner(cal, bands)
        assert winner == 2
        assert sweep_band_by_flops(grid, 64, bands=list(bands)) == 2
        assert res.algorithm1_band == 2

    def test_single_core_makespan_is_total_work(self):
        """No idle time on one core: makespan == Σ flops / rate, so the
        simulated objective reduces to total flops exactly."""
        cal, _ = synthetic_calibration(5, 64, {d: 8 for d in range(1, 5)})
        res, _ = self._winner(cal, tuple(range(1, 6)))
        for rep in res.candidates:
            assert rep.makespan_s == pytest.approx(
                rep.total_flops / 1e9, rel=1e-9
            )


# ---------------------------------------------------------------------------
# Sweep: determinism, dominance, grid handling
# ---------------------------------------------------------------------------
class TestSweepDeterminism:
    def test_same_inputs_identical_json(self, calibration):
        a = sweep(calibration, smoke=True)
        b = sweep(calibration, smoke=True)
        assert a.to_json() == b.to_json()

    def test_worker_count_does_not_change_ranking(self, calibration):
        a = sweep(calibration, workers=1)
        b = sweep(calibration, workers=4)
        assert a.to_json() == b.to_json()

    def test_ranking_is_monotone_in_makespan(self, calibration):
        res = sweep(calibration)
        spans = [c.makespan_s for c in res.candidates]
        assert spans == sorted(spans)

    def test_smoke_trims_grid(self, calibration):
        full = sweep(calibration)
        smoke = sweep(calibration, smoke=True)
        assert len(smoke.candidates) <= len(full.candidates)
        assert all(
            c.candidate.scheduler in ("priority", "fifo")
            for c in smoke.candidates
        )

    def test_infeasible_bands_raise(self, calibration):
        with pytest.raises(ConfigurationError):
            sweep(calibration, grid=TuneGrid(bands=(99,)))

    def test_problem_document_carries_recorded_meta(self, calibration):
        res = sweep(calibration, smoke=True)
        assert res.problem["n"] == N
        assert res.problem["tile"] == TILE
        assert res.problem["accuracy"] == EPS
        assert res.rates_mode == "mean-replay"

    def test_target_ntiles_switches_to_extrapolation(self, calibration):
        res = sweep(
            calibration,
            ntiles=calibration.ntiles + 2,
            grid=TuneGrid(bands=(1, 2), schedulers=("priority",)),
        )
        assert res.rates_mode == "extrapolate"
        assert res.problem["n"] == (calibration.ntiles + 2) * TILE


class TestWinnerDominance:
    @settings(max_examples=10, deadline=None)
    @given(
        bands=st.sets(
            st.integers(min_value=1, max_value=4), min_size=1, max_size=3
        ),
        scheds=st.sets(st.sampled_from(SCHEDULERS), min_size=1),
        cores=st.sets(
            st.integers(min_value=1, max_value=3), min_size=1, max_size=2
        ),
    )
    def test_winner_has_minimal_simulated_makespan(self, bands, scheds, cores):
        """Property: over any grid, the ranked winner dominates."""
        cal, _ = synthetic_calibration(4, 32, {1: 12, 2: 6, 3: 3})
        res = sweep(
            cal,
            grid=TuneGrid(
                bands=tuple(sorted(bands)),
                schedulers=tuple(s for s in SCHEDULERS if s in scheds),
                cores=tuple(sorted(cores)),
            ),
        )
        best = min(c.makespan_s for c in res.candidates)
        assert res.winner.makespan_s == best
        tied = [
            c.candidate
            for c in res.candidates
            if c.makespan_s == best
        ]
        assert res.winner.candidate.sort_key() == min(
            c.sort_key() for c in tied
        )


# ---------------------------------------------------------------------------
# Grid parsing and serialization
# ---------------------------------------------------------------------------
class TestParseGrid:
    def test_full_spec(self):
        grid = parse_grid("band=1,2,3;scheduler=priority,fifo;dist=band,2d;"
                          "ranks=1,2;cores=2,4")
        assert grid.bands == (1, 2, 3)
        assert grid.schedulers == ("priority", "fifo")
        assert grid.distributions == ("band", "2d")
        assert grid.ranks == (1, 2)
        assert grid.cores == (2, 4)

    def test_omitted_axes_keep_defaults(self):
        grid = parse_grid("band=2")
        assert grid.bands == (2,)
        assert grid.schedulers == SCHEDULERS
        assert grid.ranks == (1,)

    def test_unknown_axis_raises(self):
        with pytest.raises(ConfigurationError):
            parse_grid("bandwidth=3")

    def test_unknown_scheduler_raises(self):
        with pytest.raises(ConfigurationError):
            parse_grid("scheduler=magic")

    def test_malformed_part_raises(self):
        with pytest.raises(ConfigurationError):
            parse_grid("band")

    def test_empty_values_raise(self):
        with pytest.raises(ConfigurationError):
            parse_grid("band=")


class TestSerialization:
    def test_candidate_round_trip(self):
        c = TuneCandidate(band_size=3, scheduler="fifo", distribution="2d",
                          ranks=2, cores=4)
        assert TuneCandidate.from_dict(c.to_dict()) == c

    def test_report_round_trip(self):
        rep = CandidateReport(
            candidate=TuneCandidate(band_size=2),
            makespan_s=0.5, critical_path_s=0.3, mean_occupancy=0.8,
            bytes_sent=1024, messages=7, total_flops=1e9, n_tasks=20,
        )
        assert CandidateReport.from_dict(rep.to_dict()) == rep

    def test_result_json_round_trip(self, calibration):
        res = sweep(calibration, smoke=True)
        clone = TuneResult.from_json(res.to_json())
        assert clone.to_json() == res.to_json()
        assert clone.winner.candidate == res.winner.candidate

    def test_config_names_every_execute_parameter(self, calibration):
        cfg = sweep(calibration, smoke=True).config()
        assert set(cfg) >= {
            "n", "tile", "band", "accuracy", "seed", "compression",
            "precision", "executor", "workers", "ranks", "scheduler",
            "batch",
        }
        assert cfg["n"] == N and cfg["tile"] == TILE


# ---------------------------------------------------------------------------
# Predicted traces
# ---------------------------------------------------------------------------
class TestPredictedRun:
    def _simulate(self, calibration, *, cores=2, collect_trace=True):
        graph = build_cholesky_graph(
            calibration.ntiles, 2, TILE, calibration.rank_fn(calibration.ntiles)
        )
        sim = simulate_schedule(
            graph, ranks=1, cores=cores, rates=calibration.rates,
            collect_trace=collect_trace,
        )
        return graph, sim

    def test_requires_trace(self, calibration):
        graph, sim = self._simulate(calibration, collect_trace=False)
        with pytest.raises(ValueError):
            predicted_run(graph, sim)

    def test_occupancy_stays_in_unit_interval(self, calibration):
        graph, sim = self._simulate(calibration, cores=2)
        run = predicted_run(graph, sim)
        occ = occupancy(run)
        assert 0.0 < occ.mean_occupancy <= 1.0 + 1e-9

    def test_core_slots_never_overlap(self, calibration):
        graph, sim = self._simulate(calibration, cores=2)
        run = predicted_run(graph, sim)
        by_thread: dict[str, list] = {}
        for t in run.tasks:
            by_thread.setdefault(t.thread, []).append(t)
        for spans in by_thread.values():
            spans.sort(key=lambda t: t.start)
            for a, b in zip(spans, spans[1:]):
                assert a.end <= b.start + 1e-12

    def test_carries_graph_and_kernels(self, calibration):
        graph, sim = self._simulate(calibration)
        run = predicted_run(graph, sim)
        assert run.graph is not None
        assert run.graph["n_tasks"] == len(run.tasks) == graph.n_tasks
        assert all(t.kernel for t in run.tasks)
        assert run.meta["predicted"] is True


# ---------------------------------------------------------------------------
# CLI: exit codes, emitted config, bitwise reproduction
# ---------------------------------------------------------------------------
class TestCLI:
    def test_tune_from_run_smoke(self, recorded, tmp_path, capsys):
        outdir, _ = recorded
        cfg = tmp_path / "config.json"
        report = tmp_path / "report.json"
        rc = main([
            "tune", "--from-run", str(outdir), "--smoke",
            "--emit", str(cfg), "--report", str(report),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "tuned BAND_SIZE" in out
        assert "Algorithm 1" in out
        doc = json.loads(cfg.read_text())
        assert doc["n"] == N and doc["tile"] == TILE
        ranked = TuneResult.from_json(report.read_text())
        assert ranked.winner.candidate.band_size == doc["band"]

    def test_config_round_trip_is_bitwise(self, recorded, tmp_path, capsys):
        """The emitted config reproduces the factorization bit-for-bit:
        two ``execute --config`` runs print the same factor digest."""
        outdir, _ = recorded
        cfg = tmp_path / "config.json"
        assert main([
            "tune", "--from-run", str(outdir), "--smoke",
            "--emit", str(cfg),
        ]) == 0
        capsys.readouterr()

        digests = []
        for _ in range(2):
            assert main(["execute", "--config", str(cfg)]) == 0
            out = capsys.readouterr().out
            line = next(
                ln for ln in out.splitlines() if ln.startswith("factor digest:")
            )
            digests.append(line.split(":", 1)[1].strip())
        assert digests[0] == digests[1]
        assert digests[0].startswith("sha256:")

    def test_tune_history_record(self, recorded, tmp_path, capsys):
        from repro.perf import load_history

        outdir, _ = recorded
        hist = tmp_path / "hist.jsonl"
        assert main([
            "tune", "--from-run", str(outdir), "--smoke", "--out", str(hist),
        ]) == 0
        capsys.readouterr()
        records = load_history(hist)
        assert [r.name for r in records] == ["tune_predicted_makespan"]
        assert records[0].config["candidates"] > 0

    def test_missing_run_dir_exits_2(self, tmp_path, capsys):
        rc = main(["tune", "--from-run", str(tmp_path / "nope")])
        capsys.readouterr()
        assert rc == 2

    def test_bad_grid_exits_2(self, recorded, capsys):
        outdir, _ = recorded
        rc = main([
            "tune", "--from-run", str(outdir), "--grid", "warp=9",
        ])
        capsys.readouterr()
        assert rc == 2

    def test_missing_config_exits_2(self, tmp_path, capsys):
        rc = main(["execute", "--config", str(tmp_path / "none.json")])
        capsys.readouterr()
        assert rc == 2

    def test_malformed_config_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        rc = main(["execute", "--config", str(bad)])
        capsys.readouterr()
        assert rc == 2

        bad.write_text("{not json")
        rc = main(["demo", "--config", str(bad)])
        capsys.readouterr()
        assert rc == 2

    def test_failed_verify_gate_exits_1(self, recorded, capsys):
        """Zero tolerance is unmeetable (real timings never exactly
        equal the prediction), so the gate must fail with exit 1."""
        outdir, _ = recorded
        rc = main([
            "tune", "--from-run", str(outdir), "--smoke",
            "--verify", "--tolerance", "0",
        ])
        err = capsys.readouterr().err
        assert rc == 1
        assert "FAIL" in err


# ---------------------------------------------------------------------------
# Prediction accuracy: the verify loop end to end
# ---------------------------------------------------------------------------
class TestPredictionAccuracy:
    def _record_and_verify(self, tmp_path, capsys, *, n, tile, eps):
        run_dir = tmp_path / "run"
        assert main([
            "execute", "--n", str(n), "--tile", str(tile), "--band", "1",
            "--accuracy", str(eps), "--workers", "2", "--obs", str(run_dir),
        ]) == 0
        capsys.readouterr()
        verify_dir = tmp_path / "verify"
        rc = main([
            "tune", "--from-run", str(run_dir), "--smoke", "--verify",
            "--verify-obs", str(verify_dir), "--report",
            str(tmp_path / "report.json"),
        ])
        out = capsys.readouterr().out
        return rc, out, verify_dir, tmp_path / "report.json"

    def test_smoke_scale_prediction_within_tolerance(self, tmp_path, capsys):
        """CI-scale variant of the integration gate: calibrate from a
        recorded run in the low-accuracy regime, tune, verify — the
        DES-predicted makespan must land inside the documented
        tolerance and pass the dual relative+IQR gate."""
        rc, out, verify_dir, report = self._record_and_verify(
            tmp_path, capsys, n=640, tile=64, eps=1e-3
        )
        assert rc == 0
        assert "verify gate passed" in out
        doc = TuneResult.from_json(report.read_text())
        assert doc.verify is not None
        assert doc.verify["gate_passed"] is True
        assert abs(doc.verify["makespan_rel_err"]) <= doc.verify["tolerance"]
        # both trace directories are standard --obs artifacts
        assert (verify_dir / "predicted" / "events.jsonl").exists()
        assert (verify_dir / "realized" / "events.jsonl").exists()
        # ... and repro compare re-runs the same gate standalone
        assert main([
            "compare", str(verify_dir / "predicted"),
            str(verify_dir / "realized"),
        ]) == 0
        capsys.readouterr()

    @pytest.mark.slow
    def test_paper_scale_prediction_within_tolerance(self, tmp_path, capsys):
        """The integration gate at N=1600, b=100 (NT=16), using the
        documented two-step refinement: a band-1 run exposes every
        rank, a second run at the tuned band supplies the dense
        kernel-class rates the band-1 run never exercises, and the
        pooled calibration's prediction must land inside the documented
        tolerance."""
        run1 = tmp_path / "run-band1"
        assert main([
            "execute", "--n", "1600", "--tile", "100", "--band", "1",
            "--accuracy", "1e-3", "--workers", "2", "--obs", str(run1),
        ]) == 0
        capsys.readouterr()
        cfg = tmp_path / "config.json"
        assert main([
            "tune", "--from-run", str(run1), "--smoke", "--emit", str(cfg),
        ]) == 0
        capsys.readouterr()
        band = json.loads(cfg.read_text())["band"]
        run2 = tmp_path / "run-tuned"
        assert main([
            "execute", "--n", "1600", "--tile", "100", "--band", str(band),
            "--accuracy", "1e-3", "--workers", "2", "--obs", str(run2),
        ]) == 0
        capsys.readouterr()
        report = tmp_path / "report.json"
        rc = main([
            "tune", "--from-run", str(run1), "--from-run", str(run2),
            "--smoke", "--verify", "--report", str(report),
        ])
        capsys.readouterr()
        assert rc == 0
        doc = TuneResult.from_json(report.read_text())
        assert doc.verify["gate_passed"] is True
        assert abs(doc.verify["makespan_rel_err"]) <= doc.verify["tolerance"]
